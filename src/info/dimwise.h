/**
 * @file
 * Dimension-wise aggregate mutual-information estimator — the
 * paper-scale "bits" measure used for Table 1 and Figures 3/5/6.
 *
 * Joint kNN MI between a raw image (10³ dims) and an activation
 * tensor (10³–10⁴ dims) is not meaningful at test-set sample sizes:
 * any joint sample-based estimate saturates near log₂N. The paper
 * reports totals of 300–12 000 bits, i.e. an aggregate that scales
 * with the activation width. This estimator reproduces that scaling:
 *
 *   Î(x; a) = Σ_d max(0, max_p Î_hist(z_p ; a_d) − max_p Î_hist(z_p ; ã_d))
 *
 * where z_p = ⟨w_p, x⟩ are a small set of fixed random projections of
 * the input (deterministic per seed), Î_hist is the quantile histogram
 * estimator, and ã_d is a_d under a fixed permutation of the sample
 * axis — a shuffled baseline that removes the finite-sample plug-in
 * bias (which the max-over-projections selection would otherwise
 * inflate). Each term measures how much information about the input
 * survives in activation coordinate d; the sum scales with tensor
 * width exactly the way the paper's totals do, and randomized noise on
 * `a` drives every term toward zero, so the measure is monotone in the
 * noise level. The bin count also adapts downward for small sample
 * sizes to keep per-cell occupancy sane.
 */
#ifndef SHREDDER_INFO_DIMWISE_H
#define SHREDDER_INFO_DIMWISE_H

#include <cstdint>

#include "src/info/histogram_mi.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace info {

/** Configuration for the dimension-wise estimator. */
struct DimwiseConfig
{
    int projections = 4;       ///< Input random projections P.
    std::uint64_t seed = 7;    ///< Projection seed (fixed ⇒ comparable).
    /**
     * Per-pair scalar estimator settings. Defaults to equal-width
     * binning, which (like the paper's kNN-based ITE estimator) is
     * magnitude-sensitive: large noise degrades the measurement even
     * when the transform is invertible. Switch to Binning::kQuantile
     * for a rank-invariant measurement of true statistical dependence
     * (see the estimator-sensitivity ablation in DESIGN.md).
     */
    HistogramConfig histogram{16, true, Binning::kEqualWidth};
    /**
     * Subsample at most this many activation dimensions (deterministic
     * stride) and extrapolate the total; 0 = use all dims. Keeps
     * AlexNet-scale measurements tractable.
     */
    std::int64_t max_dims = 0;
};

/** See file comment. */
class DimwiseMiEstimator
{
  public:
    explicit DimwiseMiEstimator(const DimwiseConfig& config = {});

    /**
     * Aggregate MI in bits between inputs and activations.
     *
     * @param inputs       [N, Dx] flattened input samples.
     * @param activations  [N, Da] flattened activation samples.
     */
    double estimate(const Tensor& inputs, const Tensor& activations) const;

    /**
     * Self-information ceiling: Σ_d H(a_d) in bits — what a
     * noise-free, perfectly informative channel of this width could
     * carry. Used for the "Zero Leakage" line in Fig. 3.
     */
    double dimension_entropy(const Tensor& activations) const;

  private:
    DimwiseConfig config_;
};

}  // namespace info
}  // namespace shredder

#endif  // SHREDDER_INFO_DIMWISE_H
