/**
 * @file
 * Signal-to-noise-ratio utilities — the paper's *in vivo* privacy.
 *
 * SNR = E[a²] / σ²(n)  (paper §2.4); in-vivo privacy is its inverse.
 * These are the cheap per-batch quantities the noise trainer tracks in
 * place of mutual information.
 */
#ifndef SHREDDER_INFO_SNR_H
#define SHREDDER_INFO_SNR_H

#include "src/tensor/tensor.h"

namespace shredder {
namespace info {

/**
 * Signal-to-noise ratio of a noisy activation.
 *
 * @param activation  Clean activation tensor a.
 * @param noise       Additive noise tensor n.
 * @returns E[a²] / σ²(n). Returns +inf when the noise has zero
 *          variance.
 */
double snr(const Tensor& activation, const Tensor& noise);

/** In-vivo privacy = 1 / SNR (0 when noise variance is 0). */
double in_vivo_privacy(const Tensor& activation, const Tensor& noise);

/** Ex-vivo privacy = 1 / MI given a mutual-information estimate. */
double ex_vivo_privacy(double mutual_information_bits);

}  // namespace info
}  // namespace shredder

#endif  // SHREDDER_INFO_SNR_H
