/**
 * @file
 * Implementation of the SNR-based in-vivo privacy metric.
 */
#include "src/info/snr.h"

#include <limits>

namespace shredder {
namespace info {

double
snr(const Tensor& activation, const Tensor& noise)
{
    const double signal = activation.mean_square();
    const double var = noise.variance();
    if (var <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    return signal / var;
}

double
in_vivo_privacy(const Tensor& activation, const Tensor& noise)
{
    const double s = snr(activation, noise);
    if (!std::isfinite(s) || s <= 0.0) {
        return 0.0;
    }
    return 1.0 / s;
}

double
ex_vivo_privacy(double mutual_information_bits)
{
    if (mutual_information_bits <= 0.0) {
        return std::numeric_limits<double>::infinity();
    }
    return 1.0 / mutual_information_bits;
}

}  // namespace info
}  // namespace shredder
