/**
 * @file
 * Implementation of the dimension-wise aggregate MI estimator.
 */
#include "src/info/dimwise.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "src/runtime/logging.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace info {

DimwiseMiEstimator::DimwiseMiEstimator(const DimwiseConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.projections >= 1,
                     "dimwise estimator needs >= 1 projection");
}

double
DimwiseMiEstimator::estimate(const Tensor& inputs,
                             const Tensor& activations) const
{
    SHREDDER_REQUIRE(inputs.shape().rank() == 2 &&
                         activations.shape().rank() == 2,
                     "dimwise estimator wants rank-2 sample matrices");
    const std::int64_t n = inputs.shape()[0];
    SHREDDER_REQUIRE(activations.shape()[0] == n,
                     "sample count mismatch: ", n, " vs ",
                     activations.shape()[0]);
    const std::int64_t dx = inputs.shape()[1];
    const std::int64_t da = activations.shape()[1];

    // Fixed random projections of the input.
    Rng rng(config_.seed);
    const int P = config_.projections;
    std::vector<std::vector<float>> z(
        static_cast<std::size_t>(P),
        std::vector<float>(static_cast<std::size_t>(n)));
    for (int p = 0; p < P; ++p) {
        std::vector<float> w(static_cast<std::size_t>(dx));
        for (auto& v : w) {
            v = rng.normal(0.0f, 1.0f);
        }
        for (std::int64_t i = 0; i < n; ++i) {
            const float* row = inputs.data() + i * dx;
            double acc = 0.0;
            for (std::int64_t t = 0; t < dx; ++t) {
                acc += static_cast<double>(row[t]) *
                       w[static_cast<std::size_t>(t)];
            }
            z[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)] =
                static_cast<float>(acc);
        }
    }

    // Deterministic stride subsampling of activation dims.
    std::int64_t used = da;
    std::int64_t stride = 1;
    if (config_.max_dims > 0 && da > config_.max_dims) {
        stride = (da + config_.max_dims - 1) / config_.max_dims;
        used = (da + stride - 1) / stride;
    }

    // Adapt bin count to the sample budget (keeps ≥ ~6 samples per
    // marginal bin) so the plug-in bias stays controllable.
    HistogramConfig hcfg = config_.histogram;
    const int adaptive = static_cast<int>(
        std::sqrt(static_cast<double>(n) / 6.0));
    hcfg.bins = std::max(4, std::min(hcfg.bins, adaptive));
    const HistogramMiEstimator hist(hcfg);

    // Fixed permutation for the shuffled baseline (same for all dims).
    Rng perm_rng(config_.seed ^ 0xabcdef12ULL);
    const std::vector<std::int64_t> perm = perm_rng.permutation(n);

    std::vector<double> contributions(static_cast<std::size_t>(used), 0.0);
    parallel_for(0, used, [&](std::int64_t u) {
        const std::int64_t d = u * stride;
        std::vector<float> a_col(static_cast<std::size_t>(n));
        std::vector<float> a_shuf(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            a_col[static_cast<std::size_t>(i)] = activations[i * da + d];
        }
        for (std::int64_t i = 0; i < n; ++i) {
            a_shuf[static_cast<std::size_t>(i)] =
                a_col[static_cast<std::size_t>(
                    perm[static_cast<std::size_t>(i)])];
        }
        double best = 0.0, baseline = 0.0;
        for (int p = 0; p < P; ++p) {
            const auto& zp = z[static_cast<std::size_t>(p)];
            best = std::max(best, hist.estimate(zp, a_col));
            baseline = std::max(baseline, hist.estimate(zp, a_shuf));
        }
        contributions[static_cast<std::size_t>(u)] =
            std::max(0.0, best - baseline);
    }, /*grain=*/16);

    double total = 0.0;
    for (double c : contributions) {
        total += c;
    }
    // Extrapolate the subsample back to the full width.
    return total * static_cast<double>(da) / static_cast<double>(used);
}

double
DimwiseMiEstimator::dimension_entropy(const Tensor& activations) const
{
    SHREDDER_REQUIRE(activations.shape().rank() == 2,
                     "dimension_entropy wants a rank-2 sample matrix");
    const std::int64_t n = activations.shape()[0];
    const std::int64_t da = activations.shape()[1];

    std::int64_t used = da;
    std::int64_t stride = 1;
    if (config_.max_dims > 0 && da > config_.max_dims) {
        stride = (da + config_.max_dims - 1) / config_.max_dims;
        used = (da + stride - 1) / stride;
    }

    const HistogramMiEstimator hist(config_.histogram);
    std::vector<double> hs(static_cast<std::size_t>(used), 0.0);
    parallel_for(0, used, [&](std::int64_t u) {
        const std::int64_t d = u * stride;
        std::vector<float> a_col(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            a_col[static_cast<std::size_t>(i)] = activations[i * da + d];
        }
        hs[static_cast<std::size_t>(u)] = hist.entropy(a_col);
    }, /*grain=*/16);

    double total = 0.0;
    for (double h : hs) {
        total += h;
    }
    return total * static_cast<double>(da) / static_cast<double>(used);
}

}  // namespace info
}  // namespace shredder
