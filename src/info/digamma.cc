/**
 * @file
 * Implementation of the digamma function used by the KSG estimator.
 */
#include "src/info/digamma.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace info {

double
digamma(double x)
{
    SHREDDER_REQUIRE(x > 0.0, "digamma needs x > 0, got ", x);
    double result = 0.0;
    // Recurrence ψ(x) = ψ(x+1) − 1/x until x is in the asymptotic
    // region.
    while (x < 6.0) {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − Σ B_{2n}/(2n·x^{2n}).
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    const double series =
        inv2 * (1.0 / 12.0 -
                inv2 * (1.0 / 120.0 -
                        inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    result += std::log(x) - 0.5 * inv - series;
    return result;
}

}  // namespace info
}  // namespace shredder
