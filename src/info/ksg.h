/**
 * @file
 * Kraskov–Stögbauer–Grassberger (KSG) k-nearest-neighbor estimator of
 * Shannon mutual information between continuous vector variables.
 *
 * This is the estimator family behind the ITE toolbox's
 * "Shannon MI with KL divergence" that the paper uses (§3). KSG
 * algorithm 1:
 *
 *   Î(X;Y) = ψ(k) + ψ(N) − ⟨ψ(n_x + 1) + ψ(n_y + 1)⟩
 *
 * with max-norm distances in the joint space, where n_x (n_y) counts
 * the neighbors of sample i strictly inside its k-th joint-neighbor
 * distance in the X (Y) marginal.
 */
#ifndef SHREDDER_INFO_KSG_H
#define SHREDDER_INFO_KSG_H

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace shredder {
namespace info {

/** Configuration for the KSG estimator. */
struct KsgConfig
{
    int k = 3;                 ///< Neighbor order (3–5 is standard).
    bool add_jitter = true;    ///< Break ties with tiny noise.
    std::uint64_t jitter_seed = 99;
};

/**
 * KSG estimator. Inputs are sample matrices [N, dx] and [N, dy]
 * (rank-2 tensors with equal N). Complexity O(N²·(dx+dy)) — intended
 * for N up to a few thousand.
 */
class KsgMiEstimator
{
  public:
    explicit KsgMiEstimator(const KsgConfig& config = {});

    /**
     * Estimate I(X;Y) in **bits**. Clamps tiny negative estimates
     * (sampling noise) to zero.
     */
    double estimate(const Tensor& x, const Tensor& y) const;

    /** Estimate in nats (unclamped, raw estimator output). */
    double estimate_nats(const Tensor& x, const Tensor& y) const;

  private:
    KsgConfig config_;
};

}  // namespace info
}  // namespace shredder

#endif  // SHREDDER_INFO_KSG_H
