/**
 * @file
 * Implementation of the Gaussian closed-form MI references.
 */
#include "src/info/gaussian.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace info {

double
gaussian_mi_bits(double rho)
{
    SHREDDER_REQUIRE(rho > -1.0 && rho < 1.0,
                     "correlation must be in (-1, 1), got ", rho);
    return -0.5 * std::log2(1.0 - rho * rho);
}

double
awgn_mi_bits(double signal_var, double noise_var)
{
    SHREDDER_REQUIRE(signal_var >= 0.0 && noise_var > 0.0,
                     "bad AWGN variances");
    return 0.5 * std::log2(1.0 + signal_var / noise_var);
}

double
gaussian_entropy_bits(double variance)
{
    SHREDDER_REQUIRE(variance > 0.0, "entropy needs positive variance");
    constexpr double kTwoPiE = 2.0 * 3.14159265358979323846 * 2.718281828459045;
    return 0.5 * std::log2(kTwoPiE * variance);
}

}  // namespace info
}  // namespace shredder
