/**
 * @file
 * Plug-in (histogram) mutual-information estimator for scalar pairs.
 *
 * Uses equal-frequency (quantile) binning, which is robust to the
 * heavy-tailed, spiky marginals produced by ReLU activations, plus the
 * Miller–Madow bias correction.
 */
#ifndef SHREDDER_INFO_HISTOGRAM_MI_H
#define SHREDDER_INFO_HISTOGRAM_MI_H

#include <cstdint>
#include <vector>

namespace shredder {
namespace info {

/** How samples are assigned to bins. */
enum class Binning {
    /**
     * Equal-frequency (rank) bins. Invariant to any monotone
     * transform of the data — measures true statistical dependence.
     */
    kQuantile,
    /**
     * Equal-width bins over [min, max]. Magnitude-sensitive: large
     * additive noise stretches the range and squashes the signal into
     * few bins, the way distance-based estimators (ITE's kNN family,
     * which the paper uses) lose resolution under noise.
     */
    kEqualWidth,
};

/** Configuration for the histogram estimator. */
struct HistogramConfig
{
    int bins = 16;               ///< Bins per marginal.
    bool miller_madow = true;    ///< Apply the MM bias correction.
    Binning mode = Binning::kQuantile;
};

/** Histogram MI estimator over paired scalar samples. */
class HistogramMiEstimator
{
  public:
    explicit HistogramMiEstimator(const HistogramConfig& config = {});

    /**
     * Estimate I(X;Y) in bits from paired samples (clamped at 0).
     *
     * @param x  N scalar samples of X.
     * @param y  N scalar samples of Y (paired with x).
     */
    double estimate(const std::vector<float>& x,
                    const std::vector<float>& y) const;

    /** Entropy H(X) in bits of the binned marginal. */
    double entropy(const std::vector<float>& x) const;

    /**
     * Assign each sample a bin index in [0, bins) according to the
     * configured binning mode.
     */
    std::vector<int> assign_bins(const std::vector<float>& x) const;

    /**
     * Quantile (equal-frequency) bin assignment; exposed for tests.
     */
    std::vector<int> quantile_bins(const std::vector<float>& x) const;

    /** Equal-width bin assignment over [min, max]; exposed for tests. */
    std::vector<int> equal_width_bins(const std::vector<float>& x) const;

  private:
    HistogramConfig config_;
};

}  // namespace info
}  // namespace shredder

#endif  // SHREDDER_INFO_HISTOGRAM_MI_H
