/**
 * @file
 * Closed-form Gaussian information quantities used to validate the
 * estimators in tests.
 */
#ifndef SHREDDER_INFO_GAUSSIAN_H
#define SHREDDER_INFO_GAUSSIAN_H

namespace shredder {
namespace info {

/**
 * MI in bits of a bivariate normal with correlation rho:
 * I = −½·log₂(1 − ρ²).
 */
double gaussian_mi_bits(double rho);

/**
 * MI in bits across an additive white Gaussian noise channel
 * Y = X + N with X ~ N(0, σx²), N ~ N(0, σn²):
 * I = ½·log₂(1 + σx²/σn²).
 */
double awgn_mi_bits(double signal_var, double noise_var);

/** Differential entropy in bits of N(µ, σ²): ½·log₂(2πeσ²). */
double gaussian_entropy_bits(double variance);

}  // namespace info
}  // namespace shredder

#endif  // SHREDDER_INFO_GAUSSIAN_H
