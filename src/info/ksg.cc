/**
 * @file
 * Implementation of the KSG k-NN mutual-information estimator.
 */
#include "src/info/ksg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/info/digamma.h"
#include "src/runtime/logging.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace info {

namespace {

/** Max-norm distance between rows i and j of a [N, d] matrix. */
inline double
chebyshev(const float* a, const float* b, std::int64_t d)
{
    double mx = 0.0;
    for (std::int64_t t = 0; t < d; ++t) {
        mx = std::max(mx, std::abs(static_cast<double>(a[t]) - b[t]));
    }
    return mx;
}

}  // namespace

KsgMiEstimator::KsgMiEstimator(const KsgConfig& config) : config_(config)
{
    SHREDDER_REQUIRE(config.k >= 1, "KSG needs k >= 1");
}

double
KsgMiEstimator::estimate_nats(const Tensor& x, const Tensor& y) const
{
    SHREDDER_REQUIRE(x.shape().rank() == 2 && y.shape().rank() == 2,
                     "KSG wants rank-2 sample matrices");
    const std::int64_t n = x.shape()[0];
    SHREDDER_REQUIRE(y.shape()[0] == n, "KSG sample count mismatch: ", n,
                     " vs ", y.shape()[0]);
    SHREDDER_REQUIRE(n > config_.k + 1, "KSG needs N > k+1 samples (N=", n,
                     ", k=", config_.k, ")");
    const std::int64_t dx = x.shape()[1];
    const std::int64_t dy = y.shape()[1];

    // Optional tie-breaking jitter: KSG assumes continuous data; exact
    // duplicates (common after ReLU) bias the neighbor counts.
    Tensor xj = x, yj = y;
    if (config_.add_jitter) {
        Rng rng(config_.jitter_seed);
        const double sx = 1e-9 * std::max(1.0, std::abs(x.mean()));
        const double sy = 1e-9 * std::max(1.0, std::abs(y.mean()));
        float* px = xj.data();
        for (std::int64_t i = 0; i < xj.size(); ++i) {
            px[i] += rng.normal(0.0f, static_cast<float>(sx));
        }
        float* py = yj.data();
        for (std::int64_t i = 0; i < yj.size(); ++i) {
            py[i] += rng.normal(0.0f, static_cast<float>(sy));
        }
    }

    const int k = config_.k;
    std::vector<double> psi_terms(static_cast<std::size_t>(n), 0.0);

    parallel_for(0, n, [&](std::int64_t i) {
        const float* xi = xj.data() + i * dx;
        const float* yi = yj.data() + i * dy;

        // k smallest joint distances to sample i (excluding i itself).
        std::vector<double> best(static_cast<std::size_t>(k),
                                 std::numeric_limits<double>::infinity());
        for (std::int64_t j = 0; j < n; ++j) {
            if (j == i) {
                continue;
            }
            const double djoint =
                std::max(chebyshev(xi, xj.data() + j * dx, dx),
                         chebyshev(yi, yj.data() + j * dy, dy));
            // Insertion into the small sorted top-k buffer.
            if (djoint < best[static_cast<std::size_t>(k) - 1]) {
                int pos = k - 1;
                while (pos > 0 && best[static_cast<std::size_t>(pos - 1)] >
                                      djoint) {
                    best[static_cast<std::size_t>(pos)] =
                        best[static_cast<std::size_t>(pos - 1)];
                    --pos;
                }
                best[static_cast<std::size_t>(pos)] = djoint;
            }
        }
        const double eps = best[static_cast<std::size_t>(k) - 1];

        // Count strict marginal neighbors within eps.
        std::int64_t n_x = 0, n_y = 0;
        for (std::int64_t j = 0; j < n; ++j) {
            if (j == i) {
                continue;
            }
            if (chebyshev(xi, xj.data() + j * dx, dx) < eps) {
                ++n_x;
            }
            if (chebyshev(yi, yj.data() + j * dy, dy) < eps) {
                ++n_y;
            }
        }
        psi_terms[static_cast<std::size_t>(i)] =
            digamma(static_cast<double>(n_x) + 1.0) +
            digamma(static_cast<double>(n_y) + 1.0);
    }, /*grain=*/64);

    double mean_psi = 0.0;
    for (double t : psi_terms) {
        mean_psi += t;
    }
    mean_psi /= static_cast<double>(n);

    return digamma(static_cast<double>(k)) +
           digamma(static_cast<double>(n)) - mean_psi;
}

double
KsgMiEstimator::estimate(const Tensor& x, const Tensor& y) const
{
    const double nats = estimate_nats(x, y);
    return std::max(0.0, nats / std::log(2.0));
}

}  // namespace info
}  // namespace shredder
