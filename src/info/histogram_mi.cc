/**
 * @file
 * Implementation of the histogram mutual-information estimator.
 */
#include "src/info/histogram_mi.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace info {

HistogramMiEstimator::HistogramMiEstimator(const HistogramConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.bins >= 2, "histogram needs >= 2 bins");
}

std::vector<int>
HistogramMiEstimator::assign_bins(const std::vector<float>& x) const
{
    return config_.mode == Binning::kQuantile ? quantile_bins(x)
                                              : equal_width_bins(x);
}

std::vector<int>
HistogramMiEstimator::equal_width_bins(const std::vector<float>& x) const
{
    const std::size_t n = x.size();
    SHREDDER_REQUIRE(n > 0, "empty sample vector");
    float lo = x[0], hi = x[0];
    for (float v : x) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::vector<int> bin(n, 0);
    if (hi <= lo) {
        return bin;  // constant data → single bin
    }
    const float scale = static_cast<float>(config_.bins) / (hi - lo);
    for (std::size_t i = 0; i < n; ++i) {
        const int b = static_cast<int>((x[i] - lo) * scale);
        bin[i] = std::min(b, config_.bins - 1);
    }
    return bin;
}

std::vector<int>
HistogramMiEstimator::quantile_bins(const std::vector<float>& x) const
{
    const std::size_t n = x.size();
    SHREDDER_REQUIRE(n > 0, "empty sample vector");
    const int bins = config_.bins;

    // Rank-based assignment handles ties by argsort order, which keeps
    // bins balanced even for spiky (ReLU-zero) marginals.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
        order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&x](std::size_t a, std::size_t b) {
                         return x[a] < x[b];
                     });
    std::vector<int> bin(n);
    for (std::size_t r = 0; r < n; ++r) {
        int b = static_cast<int>((r * static_cast<std::size_t>(bins)) / n);
        bin[order[r]] = std::min(b, bins - 1);
    }
    // Exact ties must land in the same bin (otherwise constant data
    // would fake entropy): collapse runs of equal values to the bin of
    // the run's first element.
    for (std::size_t r = 1; r < n; ++r) {
        if (x[order[r]] == x[order[r - 1]]) {
            bin[order[r]] = bin[order[r - 1]];
        }
    }
    return bin;
}

double
HistogramMiEstimator::entropy(const std::vector<float>& x) const
{
    const auto bx = assign_bins(x);
    std::vector<double> counts(static_cast<std::size_t>(config_.bins), 0.0);
    for (int b : bx) {
        counts[static_cast<std::size_t>(b)] += 1.0;
    }
    const double n = static_cast<double>(x.size());
    double h = 0.0;
    int occupied = 0;
    for (double c : counts) {
        if (c > 0.0) {
            const double p = c / n;
            h -= p * std::log2(p);
            ++occupied;
        }
    }
    if (config_.miller_madow && occupied > 1) {
        h += static_cast<double>(occupied - 1) / (2.0 * n * std::log(2.0));
    }
    return h;
}

double
HistogramMiEstimator::estimate(const std::vector<float>& x,
                               const std::vector<float>& y) const
{
    SHREDDER_REQUIRE(x.size() == y.size() && !x.empty(),
                     "paired sample size mismatch");
    const int bins = config_.bins;
    const auto bx = assign_bins(x);
    const auto by = assign_bins(y);

    const std::size_t cells = static_cast<std::size_t>(bins) *
                              static_cast<std::size_t>(bins);
    std::vector<double> joint(cells, 0.0);
    std::vector<double> mx(static_cast<std::size_t>(bins), 0.0);
    std::vector<double> my(static_cast<std::size_t>(bins), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        joint[static_cast<std::size_t>(bx[i]) *
                  static_cast<std::size_t>(bins) +
              static_cast<std::size_t>(by[i])] += 1.0;
        mx[static_cast<std::size_t>(bx[i])] += 1.0;
        my[static_cast<std::size_t>(by[i])] += 1.0;
    }
    const double n = static_cast<double>(x.size());
    double mi = 0.0;
    int occupied_joint = 0, occupied_x = 0, occupied_y = 0;
    for (int a = 0; a < bins; ++a) {
        for (int b = 0; b < bins; ++b) {
            const double c =
                joint[static_cast<std::size_t>(a) *
                          static_cast<std::size_t>(bins) +
                      static_cast<std::size_t>(b)];
            if (c > 0.0) {
                ++occupied_joint;
                const double pxy = c / n;
                const double px = mx[static_cast<std::size_t>(a)] / n;
                const double py = my[static_cast<std::size_t>(b)] / n;
                mi += pxy * std::log2(pxy / (px * py));
            }
        }
    }
    for (int a = 0; a < bins; ++a) {
        occupied_x += mx[static_cast<std::size_t>(a)] > 0.0 ? 1 : 0;
        occupied_y += my[static_cast<std::size_t>(a)] > 0.0 ? 1 : 0;
    }
    if (config_.miller_madow) {
        // MM correction for I = Hx + Hy − Hxy.
        const double corr =
            (static_cast<double>(occupied_x - 1) +
             static_cast<double>(occupied_y - 1) -
             static_cast<double>(occupied_joint - 1)) /
            (2.0 * n * std::log(2.0));
        mi += corr;
    }
    return std::max(0.0, mi);
}

}  // namespace info
}  // namespace shredder
