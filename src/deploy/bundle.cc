/**
 * @file
 * Implementation of the `SHBL` deployment-bundle codec and the
 * deployment-manifest parser.
 */
#include "src/deploy/bundle.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/nn/arch.h"
#include "src/runtime/logging.h"
#include "src/runtime/serving_error.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace deploy {

namespace {

using runtime::ServingError;
using runtime::ServingErrorCode;

constexpr std::uint32_t kBundleMagic = 0x4C424853;  // 'SHBL'
constexpr std::uint32_t kEndMagic = 0x444E4553;     // 'SEND'

/** Promote a per-sample shape to a batch-1 shape. */
Shape
batched(const Shape& per_sample)
{
    switch (per_sample.rank()) {
      case 1: return Shape({1, per_sample[0]});
      case 2: return Shape({1, per_sample[0], per_sample[1]});
      case 3:
        return Shape({1, per_sample[0], per_sample[1], per_sample[2]});
      default:
        throw SerializeError("per-sample shape must have rank 1-3, got " +
                             per_sample.to_string());
    }
}

/** Drop the leading batch-1 dimension again. */
Shape
unbatched(const Shape& with_batch)
{
    switch (with_batch.rank()) {
      case 2: return Shape({with_batch[1]});
      case 3: return Shape({with_batch[1], with_batch[2]});
      case 4:
        return Shape({with_batch[1], with_batch[2], with_batch[3]});
      default:
        throw SerializeError("activation shape has impossible rank");
    }
}

/**
 * Per-sample activation shape of `net` cut at `cut` for `input`
 * (CHW). Layer shape rules are enforced with user-error checks, so a
 * caller holding a `ScopedFatalThrow` guard gets an exception — not a
 * dead process — for an inconsistent (topology, input, cut) triple.
 */
Shape
activation_shape_at(const nn::Sequential& net, std::int64_t cut,
                    const Shape& input)
{
    return unbatched(net.output_shape_range(batched(input), 0, cut));
}

[[noreturn]] void
bad_bundle(const std::string& path, const std::string& why)
{
    throw ServingError(ServingErrorCode::kBadBundle,
                       "bundle '" + path + "': " + why);
}

/** True when the spec (or one of its stages) names `kind`. */
bool
spec_uses(const PolicySpec& spec, PolicyKind kind)
{
    if (spec.kind == kind) {
        return true;
    }
    for (const PolicySpec& stage : spec.stages) {
        if (stage.kind == kind) {
            return true;
        }
    }
    return false;
}

/**
 * Spec-vs-artifact consistency shared by the trusted writer and the
 * untrusted reader: every mechanism the spec names (top level or
 * stage) must have its backing artifact, composition must stay within
 * the depth/width limits, and stage fields must be well-formed.
 * `fail` reports a violation (fatal on save, `kBadBundle` on load).
 */
template <typename FailFn>
void
check_policy_spec(const PolicySpec& spec, bool has_collection,
                  bool has_distribution, bool has_fixed, bool is_stage,
                  const FailFn& fail)
{
    switch (spec.kind) {
      case PolicyKind::kNone:
        break;
      case PolicyKind::kReplay:
        if (!has_collection) {
            fail("replay policy needs a non-empty noise collection");
        }
        break;
      case PolicyKind::kSample:
        if (!has_distribution) {
            fail("sample policy needs a fitted distribution (fit it "
                 "offline — that is the deployment story)");
        }
        break;
      case PolicyKind::kFixed:
        if (!has_fixed) {
            fail("fixed policy needs a noise tensor matching the cut "
                 "activation");
        }
        break;
      case PolicyKind::kShuffle:
        if (spec.rank_matched && !has_distribution) {
            fail("rank-matched shuffle policy needs a fitted "
                 "distribution");
        }
        break;
      case PolicyKind::kComposed: {
        if (is_stage) {
            fail("composed policy stages must not nest");
        }
        if (spec.stages.empty() ||
            spec.stages.size() > kMaxComposedStages) {
            fail("composed policy needs 1.." +
                 std::to_string(kMaxComposedStages) + " stages");
        }
        for (const PolicySpec& stage : spec.stages) {
            check_policy_spec(stage, has_collection, has_distribution,
                              has_fixed, /*is_stage=*/true, fail);
        }
        break;
      }
      default:
        fail("unknown policy kind");
    }
    if (spec.kind != PolicyKind::kComposed && !spec.stages.empty()) {
        fail("only a composed policy carries stages");
    }
    if (spec.kind != PolicyKind::kShuffle && spec.rank_matched) {
        fail("only a shuffle policy may be rank-matched");
    }
}

/** Write one (possibly stage-level) policy spec, format version 2. */
void
write_policy_spec(std::ostream& os, const PolicySpec& spec)
{
    wire::write_u32(os, static_cast<std::uint32_t>(spec.kind));
    wire::write_u64(os, spec.seed);
    if (spec.kind == PolicyKind::kShuffle) {
        wire::write_u8(os, spec.rank_matched ? 1 : 0);
    } else if (spec.kind == PolicyKind::kComposed) {
        wire::write_u32(os,
                        static_cast<std::uint32_t>(spec.stages.size()));
        for (const PolicySpec& stage : spec.stages) {
            write_policy_spec(os, stage);
        }
    }
}

/**
 * Read one policy spec from untrusted bytes. `max_kind` caps the
 * accepted kinds (version-1 files stop at `kFixed`); stages reject
 * nested composition and re-apply the same cap.
 */
PolicySpec
read_policy_spec(std::istream& is, const std::string& path,
                 std::uint32_t max_kind, bool is_stage)
{
    PolicySpec spec;
    const std::uint32_t kind = wire::read_u32(is);
    if (kind > max_kind) {
        bad_bundle(path, "unknown policy kind");
    }
    spec.kind = static_cast<PolicyKind>(kind);
    spec.seed = wire::read_u64(is);
    if (spec.kind == PolicyKind::kShuffle) {
        const std::uint8_t rank_matched = wire::read_u8(is);
        if (rank_matched > 1) {
            bad_bundle(path, "bad shuffle variant flag");
        }
        spec.rank_matched = rank_matched == 1;
    } else if (spec.kind == PolicyKind::kComposed) {
        if (is_stage) {
            bad_bundle(path, "composed policy stages must not nest");
        }
        const std::uint32_t count = wire::read_u32(is);
        if (count == 0 || count > kMaxComposedStages) {
            bad_bundle(path, "composed stage count out of range");
        }
        spec.stages.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            spec.stages.push_back(
                read_policy_spec(is, path, max_kind, /*is_stage=*/true));
        }
    }
    return spec;
}

}  // namespace

const char*
to_string(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kNone: return "none";
      case PolicyKind::kReplay: return "replay";
      case PolicyKind::kSample: return "sample";
      case PolicyKind::kFixed: return "fixed";
      case PolicyKind::kShuffle: return "shuffle";
      case PolicyKind::kComposed: return "composed";
    }
    return "?";
}

void
save_bundle(const std::string& path, const BundleContents& contents)
{
    // The save side runs in the trusted training process: argument
    // mistakes are programmer errors and fail fast, like any other
    // local misuse.
    SHREDDER_REQUIRE(contents.network != nullptr,
                     "save_bundle: null network");
    const nn::Sequential& net = *contents.network;
    SHREDDER_REQUIRE(contents.cut >= 0 && contents.cut <= net.size(),
                     "save_bundle: cut ", contents.cut,
                     " out of range for a ", net.size(), "-layer network");
    SHREDDER_REQUIRE(contents.input_shape.rank() >= 1 &&
                         contents.input_shape.rank() <= 3,
                     "save_bundle: input shape must be per-sample "
                     "(rank 1-3), got ",
                     contents.input_shape.to_string());
    const Shape act =
        activation_shape_at(net, contents.cut, contents.input_shape);

    const core::NoiseCollection empty_collection;
    const core::NoiseCollection& collection =
        contents.collection != nullptr ? *contents.collection
                                       : empty_collection;
    if (!collection.empty()) {
        SHREDDER_REQUIRE(collection.noise_shape().numel() == act.numel(),
                         "save_bundle: collection noise shape ",
                         collection.noise_shape().to_string(),
                         " does not match cut activation ",
                         act.to_string());
    }
    if (contents.distribution != nullptr) {
        SHREDDER_REQUIRE(
            contents.distribution->location().shape().numel() ==
                act.numel(),
            "save_bundle: distribution shape ",
            contents.distribution->location().shape().to_string(),
            " does not match cut activation ", act.to_string());
    }
    const bool has_fixed =
        spec_uses(contents.policy, PolicyKind::kFixed);
    if (has_fixed) {
        SHREDDER_REQUIRE(contents.fixed_noise != nullptr &&
                             contents.fixed_noise->size() == act.numel(),
                         "save_bundle: fixed policy needs a noise tensor "
                         "matching the cut activation");
    }
    check_policy_spec(contents.policy, !collection.empty(),
                      contents.distribution != nullptr, has_fixed,
                      /*is_stage=*/false, [](const std::string& why) {
                          SHREDDER_REQUIRE(false, "save_bundle: ", why);
                      });

    std::ofstream os(path, std::ios::binary);
    SHREDDER_REQUIRE(os.good(), "save_bundle: cannot open for write: ",
                     path);
    wire::write_u32(os, kBundleMagic);
    wire::write_u32(os, kBundleVersion);
    write_policy_spec(os, contents.policy);
    wire::write_shape(os, contents.input_shape);
    wire::write_u64(os, static_cast<std::uint64_t>(contents.cut));
    // Version 3: transport hints follow the cut index.
    wire::write_u8(os, static_cast<std::uint8_t>(contents.wire_dtype));
    wire::write_u8(os, contents.int8_compute ? 1 : 0);
    nn::save_arch(os, net);
    wire::write_u8(os, contents.distribution != nullptr ? 1 : 0);
    if (contents.distribution != nullptr) {
        contents.distribution->save(os);
    }
    collection.save(os);
    wire::write_u8(os, has_fixed ? 1 : 0);
    if (has_fixed) {
        write_tensor(os, *contents.fixed_noise);
    }
    wire::write_u32(os, kEndMagic);
    SHREDDER_REQUIRE(os.good(), "save_bundle: write failed: ", path);
}

Shape
Bundle::batched_input_shape() const
{
    return batched(input_shape_);
}

void
Bundle::adopt_network(std::shared_ptr<nn::Sequential> canonical)
{
    SHREDDER_CHECK(canonical != nullptr,
                   "adopt_network() of a null network");
    // The registry guarantees byte-identical content; the structural
    // invariants validated at load time (cut range, activation shape)
    // therefore keep holding. Cheap sanity check only.
    SHREDDER_CHECK(canonical->size() == network_->size(),
                   "adopt_network(): canonical layer count ",
                   canonical->size(), " != loaded ", network_->size());
    network_ = std::move(canonical);
}

std::shared_ptr<const runtime::NoisePolicy>
Bundle::make_policy() const
{
    return make_policy_for(policy_);
}

std::shared_ptr<const runtime::NoisePolicy>
Bundle::make_policy_for(const PolicySpec& spec) const
{
    switch (spec.kind) {
      case PolicyKind::kNone:
        return std::make_shared<runtime::NoNoisePolicy>();
      case PolicyKind::kReplay:
        return std::make_shared<runtime::ReplayPolicy>(collection_,
                                                       spec.seed);
      case PolicyKind::kSample:
        return std::make_shared<runtime::SamplePolicy>(*distribution_,
                                                       spec.seed);
      case PolicyKind::kFixed:
        return std::make_shared<runtime::FixedNoisePolicy>(fixed_noise_);
      case PolicyKind::kShuffle:
        if (spec.rank_matched) {
            return std::make_shared<runtime::ShufflePolicy>(*distribution_,
                                                            spec.seed);
        }
        return std::make_shared<runtime::ShufflePolicy>(spec.seed);
      case PolicyKind::kComposed: {
        std::vector<std::shared_ptr<const runtime::NoisePolicy>> stages;
        stages.reserve(spec.stages.size());
        for (const PolicySpec& stage : spec.stages) {
            stages.push_back(make_policy_for(stage));
        }
        return std::make_shared<runtime::ComposedPolicy>(std::move(stages));
      }
    }
    SHREDDER_PANIC("unreachable policy kind");
}

Bundle
load_bundle(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
        bad_bundle(path, "cannot open file");
    }

    // Everything below parses untrusted bytes: serialize errors AND
    // user-error checks deep in the stack (layer shape rules during
    // activation-shape validation) must fail the load, not the
    // process.
    ScopedFatalThrow trust_boundary;
    try {
        const std::uint32_t magic = wire::read_u32(is);
        if (magic != kBundleMagic) {
            bad_bundle(path, "bad magic (not a Shredder bundle)");
        }
        const std::uint32_t version = wire::read_u32(is);
        if (version == 0 || version > kBundleVersion) {
            std::ostringstream oss;
            oss << "bundle '" << path << "': format version " << version
                << " (this build reads <= " << kBundleVersion << ")";
            throw ServingError(ServingErrorCode::kVersionMismatch,
                               oss.str());
        }

        Bundle b;
        // Version-1 files know only the four additive kinds and carry
        // no spec extras; version 2 added shuffle/composed encodings.
        const std::uint32_t max_kind =
            version >= 2 ? static_cast<std::uint32_t>(PolicyKind::kComposed)
                         : static_cast<std::uint32_t>(PolicyKind::kFixed);
        b.policy_ = read_policy_spec(is, path, max_kind,
                                     /*is_stage=*/false);
        b.input_shape_ = wire::read_shape(is);
        if (b.input_shape_.rank() < 1 || b.input_shape_.rank() > 3) {
            bad_bundle(path, "input shape must be per-sample (rank 1-3)");
        }
        const auto cut = static_cast<std::int64_t>(wire::read_u64(is));
        if (version >= 3) {
            const std::uint8_t wire_code = wire::read_u8(is);
            if (wire_code > static_cast<std::uint8_t>(WireDtype::kI16)) {
                bad_bundle(path, "unknown wire dtype code");
            }
            b.wire_dtype_ = static_cast<WireDtype>(wire_code);
            const std::uint8_t int8_flag = wire::read_u8(is);
            if (int8_flag > 1) {
                bad_bundle(path, "bad int8_compute flag");
            }
            b.int8_compute_ = int8_flag == 1;
        }
        b.network_ = nn::load_arch(is);
        if (cut < 0 || cut > b.network_->size()) {
            bad_bundle(path, "cut index out of range");
        }
        b.cut_ = cut;
        // Cross-validate topology × input × cut: throws (FatalError,
        // converted below) when the stored pieces are inconsistent.
        b.activation_shape_ =
            activation_shape_at(*b.network_, b.cut_, b.input_shape_);

        if (wire::read_u8(is) != 0) {
            b.distribution_ = core::NoiseDistribution::load(is);
            if (b.distribution_->location().shape().numel() !=
                b.activation_shape_.numel()) {
                bad_bundle(path,
                           "distribution shape does not match the cut "
                           "activation");
            }
        }
        b.collection_ = core::NoiseCollection::load(is);
        if (!b.collection_.empty() &&
            b.collection_.noise_shape().numel() !=
                b.activation_shape_.numel()) {
            bad_bundle(path,
                       "collection noise shape does not match the cut "
                       "activation");
        }
        if (wire::read_u8(is) != 0) {
            b.fixed_noise_ = read_tensor_checked(is);
            if (b.fixed_noise_.size() != b.activation_shape_.numel()) {
                bad_bundle(path,
                           "fixed noise tensor does not match the cut "
                           "activation");
            }
        }

        check_policy_spec(b.policy_, !b.collection_.empty(),
                          b.distribution_.has_value(),
                          !b.fixed_noise_.empty(), /*is_stage=*/false,
                          [&path](const std::string& why) {
                              bad_bundle(path, why);
                          });

        wire::expect_magic(is, kEndMagic, "bundle end marker");
        is.peek();
        if (!is.eof()) {
            bad_bundle(path, "trailing bytes after end marker");
        }
        return b;
    } catch (const SerializeError& e) {
        bad_bundle(path, e.what());
    } catch (const FatalError& e) {
        bad_bundle(path, std::string("inconsistent contents: ") + e.what());
    }
}

std::vector<ManifestEntry>
parse_manifest(const std::string& path)
{
    std::ifstream is(path);
    if (!is.good()) {
        throw ServingError(ServingErrorCode::kBadBundle,
                           "manifest '" + path + "': cannot open file");
    }
    const std::filesystem::path manifest_dir =
        std::filesystem::path(path).parent_path();

    auto fail = [&path](int line_no, const std::string& why) -> void {
        std::ostringstream oss;
        oss << "manifest '" << path << "' line " << line_no << ": " << why;
        throw ServingError(ServingErrorCode::kBadBundle, oss.str());
    };

    std::vector<ManifestEntry> entries;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::istringstream tokens(line);
        std::string directive;
        if (!(tokens >> directive) || directive[0] == '#') {
            continue;  // Blank line or comment.
        }
        if (directive != "endpoint") {
            fail(line_no, "unknown directive '" + directive + "'");
        }
        ManifestEntry entry;
        std::string bundle_path;
        if (!(tokens >> entry.name >> bundle_path)) {
            fail(line_no, "expected: endpoint <name> <bundle-path>");
        }
        for (const auto& existing : entries) {
            if (existing.name == entry.name) {
                fail(line_no,
                     "duplicate endpoint name '" + entry.name + "'");
            }
        }
        std::filesystem::path resolved(bundle_path);
        if (resolved.is_relative()) {
            resolved = manifest_dir / resolved;
        }
        entry.bundle_path = resolved.string();

        std::string option;
        while (tokens >> option) {
            const auto eq = option.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == option.size()) {
                fail(line_no, "expected key=value, got '" + option + "'");
            }
            const std::string key = option.substr(0, eq);
            const std::string value = option.substr(eq + 1);
            // Values must parse *completely*: "max_batch=4x2" is a
            // typo, not a 4.
            std::size_t consumed = 0;
            try {
                if (key == "max_batch") {
                    entry.config.max_batch = std::stoll(value, &consumed);
                    if (entry.config.max_batch <= 0) {
                        fail(line_no, "max_batch must be positive");
                    }
                } else if (key == "batch_timeout_ms") {
                    entry.config.batch_timeout_ms =
                        std::stod(value, &consumed);
                    if (entry.config.batch_timeout_ms < 0.0) {
                        fail(line_no, "batch_timeout_ms must be >= 0");
                    }
                } else if (key == "max_concurrent_batches") {
                    entry.config.max_concurrent_batches =
                        std::stoll(value, &consumed);
                    if (entry.config.max_concurrent_batches < 0) {
                        fail(line_no,
                             "max_concurrent_batches must be >= 0");
                    }
                } else if (key == "context_seed") {
                    entry.config.context_seed =
                        std::stoull(value, &consumed);
                } else if (key == "adaptive_batching") {
                    if (value == "true" || value == "1") {
                        entry.config.adaptive_batching = true;
                    } else if (value == "false" || value == "0") {
                        entry.config.adaptive_batching = false;
                    } else {
                        fail(line_no, "adaptive_batching must be "
                                      "true/false/1/0");
                    }
                    consumed = value.size();
                } else if (key == "slo_ms") {
                    entry.config.slo_ms = std::stod(value, &consumed);
                    if (entry.config.slo_ms < 0.0) {
                        fail(line_no, "slo_ms must be >= 0");
                    }
                } else if (key == "ewma_alpha") {
                    entry.config.ewma_alpha = std::stod(value, &consumed);
                    if (entry.config.ewma_alpha <= 0.0 ||
                        entry.config.ewma_alpha > 1.0) {
                        fail(line_no, "ewma_alpha must be in (0, 1]");
                    }
                } else if (key == "wire_dtype") {
                    WireDtype dtype;
                    if (!parse_wire_dtype(value, &dtype)) {
                        fail(line_no,
                             "wire_dtype must be fp32/int8/int16");
                    }
                    entry.config.wire_dtype = dtype;
                    consumed = value.size();
                } else if (key == "int8_compute") {
                    if (value == "true" || value == "1") {
                        entry.config.int8_compute = true;
                    } else if (value == "false" || value == "0") {
                        entry.config.int8_compute = false;
                    } else {
                        fail(line_no,
                             "int8_compute must be true/false/1/0");
                    }
                    consumed = value.size();
                } else if (key == "shard") {
                    // Placement key — validated against the engine's
                    // shard table at registration, not here.
                    entry.config.shard = value;
                    consumed = value.size();
                } else if (key == "rate_limit_qps") {
                    entry.config.rate_limit_qps =
                        std::stod(value, &consumed);
                    if (entry.config.rate_limit_qps < 0.0) {
                        fail(line_no, "rate_limit_qps must be >= 0");
                    }
                } else if (key == "rate_limit_burst") {
                    entry.config.rate_limit_burst =
                        std::stod(value, &consumed);
                    if (entry.config.rate_limit_burst < 0.0) {
                        fail(line_no, "rate_limit_burst must be >= 0");
                    }
                } else if (key == "max_in_flight") {
                    entry.config.max_in_flight =
                        std::stoll(value, &consumed);
                    if (entry.config.max_in_flight < 0) {
                        fail(line_no, "max_in_flight must be >= 0");
                    }
                } else {
                    fail(line_no, "unknown key '" + key + "'");
                }
            } catch (const ServingError&) {
                throw;
            } catch (const std::exception&) {
                fail(line_no,
                     "malformed value for '" + key + "': '" + value + "'");
            }
            if (consumed != value.size()) {
                fail(line_no, "malformed value for '" + key + "': '" +
                                  value + "'");
            }
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

}  // namespace deploy
}  // namespace shredder
