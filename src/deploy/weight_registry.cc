/**
 * @file
 * Implementation of the content-addressed weight registry.
 */
#include "src/deploy/weight_registry.h"

#include <sstream>
#include <string>
#include <utility>

#include "src/nn/arch.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace deploy {

namespace {

/**
 * The canonical content key: the network's deterministic SARC byte
 * stream (topology + layer configs + parameters). Two networks map to
 * equal bytes iff `load_arch` would rebuild indistinguishable models.
 */
std::string
canonical_bytes(const nn::Sequential& net)
{
    std::ostringstream os;
    nn::save_arch(os, net);
    return os.str();
}

/** FNV-1a 64-bit over the canonical bytes (prune-only; see header). */
std::uint64_t
fnv1a64(const std::string& bytes)
{
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

}  // namespace

std::shared_ptr<nn::Sequential>
WeightRegistry::intern(std::shared_ptr<nn::Sequential> net)
{
    SHREDDER_CHECK(net != nullptr, "intern() of a null network");
    const std::string bytes = canonical_bytes(*net);
    const std::uint64_t hash = fnv1a64(bytes);
    const std::int64_t param_bytes =
        net->num_parameters() * static_cast<std::int64_t>(sizeof(float));

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.interned_networks;
    for (const Entry& entry : entries_) {
        if (entry.hash != hash ||
            entry.byte_count !=
                static_cast<std::int64_t>(bytes.size())) {
            continue;
        }
        // Hash hit: equality is decided by bytes, never by the hash
        // alone — a collision must not alias two different weight
        // sets. Re-serializing the canonical trades load-time CPU for
        // not keeping a second copy of every unique weight set alive.
        if (canonical_bytes(*entry.network) == bytes) {
            stats_.weights_dedupe_bytes += entry.param_bytes;
            return entry.network;
        }
    }
    Entry entry;
    entry.hash = hash;
    entry.byte_count = static_cast<std::int64_t>(bytes.size());
    entry.param_bytes = param_bytes;
    entry.network = std::move(net);
    entries_.push_back(entry);
    ++stats_.unique_weight_sets;
    return entries_.back().network;
}

WeightRegistryStats
WeightRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace deploy
}  // namespace shredder
