/**
 * @file
 * Deployment bundles — the `SHBL` artifact that closes the paper's
 * train→ship→serve loop.
 *
 * Shredder's premise (§2.5) is that noise distributions are *learned
 * offline* and then *deployed* on devices that only ever apply them.
 * A bundle is the unit of that deployment: one versioned binary file
 * packing everything a cold process needs to serve a trained split —
 *
 *   - the network architecture + weights (`SARC` codec, src/nn/arch.h:
 *     the topology is rebuilt from layer tags, not assumed),
 *   - the cut index and the input CHW shape,
 *   - the learned `NoiseCollection` (replay deployment),
 *   - the fitted `NoiseDistribution` (sampling deployment),
 *   - a policy spec (`none|replay|sample|fixed|shuffle|composed` +
 *     root seed, plus the shuffle-variant flag and composed stage
 *     chain) naming the mechanism this artifact was measured under.
 *
 * `save_bundle` writes the artifact from in-process objects;
 * `load_bundle` reconstructs an owning `Bundle` and cross-validates
 * every section (cut range, activation-shape agreement of collection/
 * distribution/fixed tensor, exact end-of-file). Bundles cross a trust
 * boundary, so *every* load failure throws a typed
 * `runtime::ServingError` — `kBadBundle` for damage, `kVersionMismatch`
 * for a future format — and never terminates the process.
 *
 * A text **manifest** maps endpoint names to bundle paths and batch
 * config; `parse_manifest` feeds
 * `ServingEngine::register_endpoints_from_manifest` and the
 * `shredder_serve` CLI, so a multi-endpoint engine cold-starts from
 * disk with zero application code. Formats are specified normatively
 * in docs/DEPLOYMENT.md.
 */
#ifndef SHREDDER_DEPLOY_BUNDLE_H
#define SHREDDER_DEPLOY_BUNDLE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/nn/sequential.h"
#include "src/runtime/noise_policy.h"
#include "src/runtime/serving_engine.h"
#include "src/tensor/quantize.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace deploy {

/**
 * Current bundle format version (`load_bundle` accepts ≤ this).
 * Version 2 added the `shuffle` and `composed` policy-spec encodings;
 * version 3 added the transport hints (`wire_dtype` u8 + `int8_compute`
 * u8 after the cut index). Version-1/2 files still load — older
 * versions imply fp32 transport.
 */
constexpr std::uint32_t kBundleVersion = 3;

/** The noise mechanism a bundle deploys (mirrors `NoisePolicy`). */
enum class PolicyKind : std::uint32_t {
    kNone = 0,      ///< Clean baseline (`NoNoisePolicy`).
    kReplay = 1,    ///< Stored-collection draw (`ReplayPolicy`).
    kSample = 2,    ///< Fresh fitted-distribution draw (`SamplePolicy`).
    kFixed = 3,     ///< One fixed tensor (`FixedNoisePolicy`).
    kShuffle = 4,   ///< Per-request permutation (`ShufflePolicy`).
    kComposed = 5,  ///< Ordered policy chain (`ComposedPolicy`).
};

/**
 * Stable mechanism tag ("none", "replay", "sample", "fixed",
 * "shuffle", "composed").
 */
const char* to_string(PolicyKind kind);

/** Stage count ceiling of a composed policy spec. */
constexpr std::uint32_t kMaxComposedStages = 8;

/**
 * What mechanism to run at deployment, and under which root seed.
 * `kShuffle` and `kComposed` carry spec extras (format version 2):
 * the shuffle variant flag, and the stage chain respectively.
 */
struct PolicySpec
{
    PolicyKind kind = PolicyKind::kReplay;
    /** Root seed of the id-keyed noise draws (see `noise_seed`). */
    std::uint64_t seed = 0xC0FFEE;
    /**
     * `kShuffle` only: rank-matched variant (argsort re-sampling,
     * needs the bundled distribution) instead of plain permutation.
     */
    bool rank_matched = false;
    /**
     * `kComposed` only: 1–`kMaxComposedStages` stages in application
     * order. Stages must not be `kComposed` themselves (one level of
     * composition — readers reject deeper nesting).
     */
    std::vector<PolicySpec> stages;
};

/**
 * Borrowed views of the in-process objects a bundle is saved from.
 * Everything is non-owning; the pointers must stay valid for the
 * duration of the `save_bundle` call only.
 */
struct BundleContents
{
    /** The trained network (required). */
    const nn::Sequential* network = nullptr;
    /** Cut index: edge = [0, cut), cloud = [cut, size). */
    std::int64_t cut = 0;
    /** Per-sample input shape (CHW) the network was trained for. */
    Shape input_shape{};
    /** Deployment mechanism + seed. */
    PolicySpec policy{};
    /** Learned collection (required for `kReplay`; else optional). */
    const core::NoiseCollection* collection = nullptr;
    /** Fitted distribution (required for `kSample`; else optional). */
    const core::NoiseDistribution* distribution = nullptr;
    /** Fixed tensor (required for `kFixed`; else ignored). */
    const Tensor* fixed_noise = nullptr;
    /**
     * Transport hint: the wire dtype this artifact was measured under
     * (clients of a cold-started endpoint should quantize to it so
     * measured = served). fp32 = plain v1 transport.
     */
    WireDtype wire_dtype = WireDtype::kF32;
    /**
     * Transport hint: enable the server's int8 direct-consume GEMM
     * path for endpoints cold-started from this artifact.
     */
    bool int8_compute = false;
};

/**
 * Write one deployable artifact. The save side is trusted (it runs in
 * the training process), so argument mistakes — null network, cut out
 * of range, a policy without its backing artifact, shape disagreements
 * — are fatal, exactly like other local misuse.
 */
void save_bundle(const std::string& path, const BundleContents& contents);

/**
 * An owning, validated, loaded bundle. Holds the rebuilt network and
 * every embedded artifact; `make_policy()` materializes the spec'd
 * `NoisePolicy`. A `ReplayPolicy` borrows this bundle's collection,
 * so the bundle must outlive any policy it produced (the engine's
 * cold-start path keeps the bundle inside the endpoint for exactly
 * this reason).
 */
class Bundle
{
  public:
    /** The rebuilt network (owned, possibly shared via the registry). */
    nn::Sequential& network() { return *network_; }
    const nn::Sequential& network() const { return *network_; }

    /**
     * Shared ownership of the network — the handle
     * `deploy::WeightRegistry::intern` takes, so several bundles with
     * identical content can end up aliasing one weight set.
     */
    std::shared_ptr<nn::Sequential> share_network() const
    {
        return network_;
    }

    /**
     * Replace this bundle's network with the registry's canonical one
     * (content-identical by the registry's byte-equality contract;
     * checked). Registry use only, and only before any `SplitModel`
     * or policy is built over `network()` — existing references keep
     * pointing at the replaced object.
     */
    void adopt_network(std::shared_ptr<nn::Sequential> canonical);

    /** Cut index the split was trained at. */
    std::int64_t cut() const { return cut_; }

    /** Per-sample input shape (CHW). */
    const Shape& input_shape() const { return input_shape_; }

    /** The input shape promoted to a batch of one (for edge forwards). */
    Shape batched_input_shape() const;

    /** Per-sample activation shape at the cut (no batch dim). */
    const Shape& activation_shape() const { return activation_shape_; }

    /** The deployment mechanism this artifact was saved under. */
    const PolicySpec& policy_spec() const { return policy_; }

    /** Transport hint: wire dtype the artifact was measured under. */
    WireDtype wire_dtype() const { return wire_dtype_; }

    /** Transport hint: run the int8 direct-consume path when serving. */
    bool int8_compute() const { return int8_compute_; }

    /** Embedded learned collection (may be empty). */
    const core::NoiseCollection& collection() const { return collection_; }

    /** True when a fitted distribution is embedded. */
    bool has_distribution() const { return distribution_.has_value(); }

    /** The embedded fit (valid only when `has_distribution()`). */
    const core::NoiseDistribution& distribution() const
    {
        return *distribution_;
    }

    /**
     * Build the `NoisePolicy` the spec names. Replay policies borrow
     * this bundle's collection — keep the bundle alive as long as the
     * policy serves.
     */
    std::shared_ptr<const runtime::NoisePolicy> make_policy() const;

  private:
    friend Bundle load_bundle(const std::string& path);

    /** Materialize one (possibly stage-level) spec against the artifacts. */
    std::shared_ptr<const runtime::NoisePolicy> make_policy_for(
        const PolicySpec& spec) const;

    std::shared_ptr<nn::Sequential> network_;
    std::int64_t cut_ = 0;
    Shape input_shape_{};
    Shape activation_shape_{};
    PolicySpec policy_{};
    core::NoiseCollection collection_;
    std::optional<core::NoiseDistribution> distribution_;
    Tensor fixed_noise_;
    WireDtype wire_dtype_ = WireDtype::kF32;
    bool int8_compute_ = false;
};

/**
 * Load and validate a bundle written by `save_bundle`.
 *
 * @throws runtime::ServingError `kBadBundle` for any malformed input
 *         (missing file, bad magic, truncation, unknown layer tag,
 *         section shape disagreement, trailing garbage) and
 *         `kVersionMismatch` for a format version newer than
 *         `kBundleVersion`. Never terminates the process.
 */
Bundle load_bundle(const std::string& path);

/** One parsed manifest line: a named endpoint backed by a bundle. */
struct ManifestEntry
{
    std::string name;
    /** Bundle path, resolved against the manifest's directory. */
    std::string bundle_path;
    /** Per-endpoint serving knobs (manifest keys override defaults). */
    runtime::EndpointConfig config{};
};

/**
 * Parse a deployment manifest (see docs/DEPLOYMENT.md):
 *
 *   # comment
 *   endpoint <name> <bundle-path> [key=value ...]
 *
 * with keys `max_batch`, `batch_timeout_ms`, `max_concurrent_batches`,
 * `context_seed`, `adaptive_batching`, `slo_ms`, `ewma_alpha`,
 * `wire_dtype` (`fp32|int8|int16`), `int8_compute` (`true|false|1|0`),
 * `shard` (shard name or bare index), `rate_limit_qps`,
 * `rate_limit_burst` and `max_in_flight`. Relative bundle paths
 * resolve against the manifest file's directory.
 * `wire_dtype`/`int8_compute` left unset defer to the bundle's own
 * transport hints; the shard key is validated at registration.
 *
 * @throws runtime::ServingError `kBadBundle` on a missing file, an
 *         unknown directive/key, a malformed value, or a duplicate
 *         endpoint name.
 */
std::vector<ManifestEntry> parse_manifest(const std::string& path);

}  // namespace deploy
}  // namespace shredder

#endif  // SHREDDER_DEPLOY_BUNDLE_H
