/**
 * @file
 * Content-addressed weight registry: N endpoints sharing one backbone
 * alias ONE immutable weight set instead of costing N× RAM.
 *
 * A multi-tenant deployment commonly serves many endpoints from the
 * same trained network — the same bundle shipped under several names,
 * or per-tenant bundles saved from one training run. Each
 * `load_bundle` rebuilds its own `nn::Sequential`, so without
 * interning a zoo of same-backbone endpoints multiplies the weight
 * memory by the endpoint count.
 *
 * The registry fixes this at bundle-load time: `intern` serializes a
 * candidate network through the deterministic `SARC` codec
 * (src/nn/arch.h — topology, layer configs, and parameters in one
 * canonical byte stream), hashes the bytes, and returns the canonical
 * network for that exact content. On a hash hit the stored canonical
 * is re-serialized and byte-compared before aliasing, so a hash
 * collision can never alias two *different* weight sets — equality is
 * decided by bytes, the hash only prunes candidates.
 *
 * Interning is load-time only. Serving never touches the registry:
 * endpoints hold plain `shared_ptr`s to immutable networks and the
 * lock-free shared-weight execution model is unchanged. Canonical
 * networks are retained for the registry's lifetime, so an interned
 * weight set survives endpoint deregistration and a re-registered
 * endpoint aliases it again without reloading.
 */
#ifndef SHREDDER_DEPLOY_WEIGHT_REGISTRY_H
#define SHREDDER_DEPLOY_WEIGHT_REGISTRY_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/nn/sequential.h"

namespace shredder {
namespace deploy {

/** Aggregate registry counters (see `WeightRegistry::stats`). */
struct WeightRegistryStats
{
    /** Total `intern` calls (one per bundle-backed endpoint). */
    std::int64_t interned_networks = 0;
    /** Distinct weight sets the registry holds canonically. */
    std::int64_t unique_weight_sets = 0;
    /**
     * Parameter bytes saved by aliasing: Σ over deduplicated interns
     * of that network's parameter payload (fp32 bytes). Zero until a
     * second endpoint shares a backbone.
     */
    std::int64_t weights_dedupe_bytes = 0;
};

/** See file comment. */
class WeightRegistry
{
  public:
    /**
     * Return the canonical network for `net`'s exact content. First
     * sight of a content: `net` itself becomes canonical (retained by
     * the registry). Identical content seen before: the existing
     * canonical is returned and `net` is released — the caller should
     * replace every reference with the returned pointer.
     *
     * Thread-safe; cost is one SARC serialization of `net` (plus one
     * of each same-hash canonical), which is why this runs at load
     * time and never on the serving path.
     */
    std::shared_ptr<nn::Sequential> intern(
        std::shared_ptr<nn::Sequential> net);

    /** Snapshot of the aggregate counters. */
    WeightRegistryStats stats() const;

  private:
    struct Entry
    {
        std::uint64_t hash = 0;       ///< FNV-1a 64 of the SARC bytes.
        std::int64_t byte_count = 0;  ///< SARC stream length.
        std::int64_t param_bytes = 0; ///< Parameter payload (fp32).
        std::shared_ptr<nn::Sequential> network;
    };

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
    WeightRegistryStats stats_;
};

}  // namespace deploy
}  // namespace shredder

#endif  // SHREDDER_DEPLOY_WEIGHT_REGISTRY_H
