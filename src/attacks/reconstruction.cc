#include "src/attacks/reconstruction.h"

#include <algorithm>
#include <cmath>

#include "src/data/dataloader.h"
#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/extras.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/runtime/logging.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace attacks {

namespace {

using nn::Mode;

/**
 * Run the deployment mechanism over a batch activation: sample `i`
 * observes `policy->apply(activation_i, base_id + i)` — the same
 * per-request, id-keyed application a served endpoint performs.
 */
Tensor
apply_policy(const Tensor& activation, const runtime::NoisePolicy* policy,
             std::int64_t per_sample, std::uint64_t base_id)
{
    if (policy == nullptr) {
        return activation;
    }
    Tensor noisy = activation;
    const std::int64_t batch = activation.size() / per_sample;
    Tensor sample(Shape({per_sample}));
    for (std::int64_t i = 0; i < batch; ++i) {
        const float* row = activation.data() + i * per_sample;
        std::copy(row, row + per_sample, sample.data());
        // `noisy` already holds the activation copy `apply_into` wants
        // in its destination row.
        policy->apply_into(sample, base_id + static_cast<std::uint64_t>(i),
                           noisy.data() + i * per_sample);
    }
    return noisy;
}

/**
 * Mean per-image SSIM between two [B, …] batches (global statistics —
 * one mean/variance/covariance per image — with the standard
 * stabilizers C1=0.01², C2=0.03² for a [0, 1] dynamic range).
 */
double
mean_ssim(const Tensor& a, const Tensor& b, std::int64_t per_image)
{
    constexpr double kC1 = 0.01 * 0.01;
    constexpr double kC2 = 0.03 * 0.03;
    const std::int64_t batch = a.size() / per_image;
    const double n = static_cast<double>(per_image);
    double total = 0.0;
    for (std::int64_t i = 0; i < batch; ++i) {
        const float* pa = a.data() + i * per_image;
        const float* pb = b.data() + i * per_image;
        double mu_a = 0.0, mu_b = 0.0;
        for (std::int64_t j = 0; j < per_image; ++j) {
            mu_a += pa[j];
            mu_b += pb[j];
        }
        mu_a /= n;
        mu_b /= n;
        double var_a = 0.0, var_b = 0.0, cov = 0.0;
        for (std::int64_t j = 0; j < per_image; ++j) {
            const double da = pa[j] - mu_a;
            const double db = pb[j] - mu_b;
            var_a += da * da;
            var_b += db * db;
            cov += da * db;
        }
        var_a /= n;
        var_b /= n;
        cov /= n;
        total += ((2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2)) /
                 ((mu_a * mu_a + mu_b * mu_b + kC1) *
                  (var_a + var_b + kC2));
    }
    return batch > 0 ? total / static_cast<double>(batch) : 0.0;
}

}  // namespace

std::unique_ptr<nn::Sequential>
make_decoder(const Shape& act_chw, const Shape& img_chw, Rng& rng)
{
    SHREDDER_REQUIRE(act_chw.rank() == 3 && img_chw.rank() == 3,
                     "decoder wants CHW shapes");
    auto dec = std::make_unique<nn::Sequential>();

    // Stage 0: if the activation is spatially tiny (e.g. 120×1×1),
    // expand it with a linear layer to an 8×h'×w' seed map whose size
    // divides the image evenly after doublings.
    std::int64_t c = act_chw[0], h = act_chw[1], w = act_chw[2];
    const std::int64_t target_h = img_chw[1], target_w = img_chw[2];
    if (h < 4 || w < 4) {
        const std::int64_t seed_h = std::max<std::int64_t>(4, target_h / 8);
        const std::int64_t seed_w = std::max<std::int64_t>(4, target_w / 8);
        dec->emplace<nn::Flatten>();
        dec->emplace<nn::Linear>(c * h * w, 16 * seed_h * seed_w, rng);
        dec->emplace<nn::ReLU>();
        // Reshape back to a map via a 1×1 "conv" trick: Flatten keeps
        // batch rows, so we insert a reshape layer.
        struct Reshape final : nn::Layer
        {
            Shape chw;
            explicit Reshape(Shape s) : chw(std::move(s)) {}
            Tensor
            forward(const Tensor& x, nn::ExecutionContext& ctx,
                    Mode) const override
            {
                ctx.state(this).in_shape = x.shape();
                return x.reshaped(Shape(
                    {x.shape()[0], chw[0], chw[1], chw[2]}));
            }
            Tensor
            backward(const Tensor& g, nn::ExecutionContext& ctx) override
            {
                return g.reshaped(ctx.state(this).in_shape);
            }
            std::string kind() const override { return "reshape"; }
            Shape
            output_shape(const Shape& in) const override
            {
                return Shape({in[0], chw[0], chw[1], chw[2]});
            }
        };
        dec->add(std::make_unique<Reshape>(Shape({16, seed_h, seed_w})));
        c = 16;
        h = seed_h;
        w = seed_w;
    }

    // Upsample+conv stages until the spatial size reaches the image.
    while (h < target_h || w < target_w) {
        dec->emplace<nn::Upsample2x>();
        h *= 2;
        w *= 2;
        nn::Conv2dConfig cfg;
        cfg.in_channels = c;
        cfg.out_channels = std::max<std::int64_t>(8, c / 2);
        cfg.kernel = 3;
        cfg.padding = 1;
        dec->emplace<nn::Conv2d>(cfg, rng);
        dec->emplace<nn::LeakyReLU>(0.1f);
        c = cfg.out_channels;
        SHREDDER_REQUIRE(h <= 4 * target_h, "decoder failed to converge "
                         "on the image size");
    }

    // Doubling can overshoot non-power-of-two image extents: crop.
    if (h > target_h || w > target_w) {
        dec->emplace<nn::Crop2d>(target_h, target_w);
        h = target_h;
        w = target_w;
    }

    // Final projection to image channels, sigmoid into [0, 1].
    nn::Conv2dConfig out_cfg;
    out_cfg.in_channels = c;
    out_cfg.out_channels = img_chw[0];
    out_cfg.kernel = 3;
    out_cfg.padding = 1;
    dec->emplace<nn::Conv2d>(out_cfg, rng);
    dec->emplace<nn::Sigmoid>();
    return dec;
}

AttackReport
run_reconstruction_attack(split::SplitModel& model,
                          const data::Dataset& train_set,
                          const data::Dataset& eval_set,
                          const runtime::NoisePolicy* policy,
                          const AttackConfig& config)
{
    Rng rng(config.seed);
    const Shape img = train_set.image_shape();
    const Shape act_batched = model.activation_shape(img);
    Shape act_chw;
    if (act_batched.rank() == 4) {
        act_chw = Shape({act_batched[1], act_batched[2], act_batched[3]});
    } else {
        act_chw = Shape({act_batched[1], 1, 1});
    }
    const std::int64_t per_sample = act_chw.numel();

    auto decoder = make_decoder(act_chw, img, rng);

    // Crop/pad note: the decoder output may overshoot the image size
    // when the image extent is not a power-of-two multiple of the
    // seed; we require exact match (true for all zoo networks).
    const Shape out = decoder->output_shape(
        Shape({1, act_chw[0], act_chw[1], act_chw[2]}));
    SHREDDER_REQUIRE(out[2] == img[1] && out[3] == img[2],
                     "decoder output ", out.to_string(),
                     " does not match image ", img.to_string());

    nn::Adam optimizer(decoder->parameters(), config.learning_rate);
    nn::MseLoss mse;
    data::DataLoader loader(train_set, config.batch_size, true, rng);
    // One context for the frozen split model, one for the decoder's
    // training stream (they are independent execution streams).
    nn::ExecutionContext model_ctx(config.seed ^ 0x5157A77ACCULL);
    nn::ExecutionContext decoder_ctx(config.seed * 31 + 7);

    double last_mse = 0.0;
    // Training traffic consumes sequential request ids, like a live
    // client; the held-out report gets its own id block far away.
    std::uint64_t next_request_id = 0;
    constexpr std::uint64_t kEvalIdBase = 1u << 20;
    for (int it = 0; it < config.iterations; ++it) {
        auto batch = loader.next();
        if (!batch) {
            loader.reset();
            batch = loader.next();
        }
        const Tensor activation =
            model.edge_forward(batch->images, model_ctx, Mode::kEval);
        Tensor observed =
            apply_policy(activation, policy, per_sample, next_request_id);
        next_request_id +=
            static_cast<std::uint64_t>(activation.size() / per_sample);
        if (act_batched.rank() == 2) {
            observed.reshape_inplace(Shape(
                {observed.shape()[0], act_chw[0], 1, 1}));
        }

        optimizer.zero_grad();
        const Tensor recon =
            decoder->forward(observed, decoder_ctx, Mode::kTrain);
        const nn::LossResult loss = mse.compute(recon, batch->images);
        decoder->backward(loss.grad, decoder_ctx);
        optimizer.step();
        last_mse = loss.value;
        if (config.verbose && it % 50 == 0) {
            inform("attack it ", it, ": mse=", loss.value);
        }
    }

    // Held-out reconstruction quality.
    const std::int64_t eval_count =
        std::min(config.eval_samples, eval_set.size());
    const data::Batch eval = data::materialize(eval_set, 0, eval_count);
    const Tensor activation =
        model.edge_forward(eval.images, model_ctx, Mode::kEval);
    Tensor observed =
        apply_policy(activation, policy, per_sample, kEvalIdBase);
    if (act_batched.rank() == 2) {
        observed.reshape_inplace(
            Shape({observed.shape()[0], act_chw[0], 1, 1}));
    }
    const Tensor recon =
        decoder->forward(observed, decoder_ctx, Mode::kEval);

    AttackReport report;
    report.train_mse = last_mse;
    report.eval_mse = ops::mse(recon, eval.images);
    // Images live in [0, 1] so MAX = 1 and PSNR = −10·log10(MSE).
    report.eval_psnr_db =
        report.eval_mse > 0.0 ? -10.0 * std::log10(report.eval_mse)
                              : 99.0;
    report.eval_ssim = mean_ssim(recon, eval.images, img.numel());
    report.decoder_params = decoder->num_parameters();
    return report;
}

}  // namespace attacks
}  // namespace shredder
