/**
 * @file
 * Input-reconstruction attack — an empirical adversary that validates
 * the privacy claim from the attacker's side.
 *
 * Mutual information bounds what *any* adversary can learn; this
 * module instantiates a concrete one: a decoder network trained to
 * invert the transmitted activation back into the input image (the
 * standard split-inference inversion attack, cf. the autoencoder
 * obfuscation discussion in the paper's related work). Shredder is
 * effective iff the decoder's reconstruction quality collapses when
 * the noise is applied while staying high on clean activations.
 *
 * The attacker is given everything a curious cloud would have: the
 * remote network, the activation stream, and (worst case) a training
 * set of (activation, input) pairs to fit the decoder on.
 */
#ifndef SHREDDER_ATTACKS_RECONSTRUCTION_H
#define SHREDDER_ATTACKS_RECONSTRUCTION_H

#include <cstdint>
#include <memory>

#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/runtime/noise_policy.h"
#include "src/split/split_model.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace attacks {

/** Attack-training knobs. */
struct AttackConfig
{
    int iterations = 300;          ///< Decoder optimization steps.
    std::int64_t batch_size = 16;
    float learning_rate = 2e-3f;
    std::int64_t eval_samples = 128;
    std::uint64_t seed = 555;
    bool verbose = false;
};

/** Outcome of one attack run. */
struct AttackReport
{
    double train_mse = 0.0;      ///< Final decoder training MSE.
    double eval_mse = 0.0;       ///< Reconstruction MSE on held-out data.
    double eval_psnr_db = 0.0;   ///< PSNR (higher = better reconstruction).
    /**
     * Mean per-image SSIM of the reconstructions against the held-out
     * inputs (global statistics, C1=0.01², C2=0.03²; ≈1 = faithful,
     * ≈0 = structure destroyed). The metric the shuffling papers
     * report, so the mode×shuffle matrix is comparable.
     */
    double eval_ssim = 0.0;
    std::int64_t decoder_params = 0;
};

/**
 * Build a convolutional decoder that maps an activation of shape
 * `act_chw` back to an image of shape `img_chw` (upsample + conv
 * stages, Sigmoid output since images live in [0, 1]).
 */
std::unique_ptr<nn::Sequential> make_decoder(const Shape& act_chw,
                                             const Shape& img_chw,
                                             Rng& rng);

/**
 * Train the inversion decoder against the transmitted tensors and
 * report reconstruction quality on held-out data.
 *
 * The observed stream is produced by a `runtime::NoisePolicy` — the
 * very abstraction the serving engine executes — applied per sample
 * under sequential request ids (a running counter during decoder
 * training, a fixed base for the held-out report), so the attack sees
 * exactly the wire a served endpoint under that policy transmits.
 * Any policy works: additive (replay/sample/fixed), `ShufflePolicy`,
 * or a `ComposedPolicy` chain.
 *
 * @param model       Split view of the frozen victim network.
 * @param train_set   Attacker's (input, activation) corpus source.
 * @param eval_set    Held-out inputs for the quality report.
 * @param policy      Per-request mechanism (nullptr = clean attack).
 * @param config      Attack knobs.
 */
AttackReport run_reconstruction_attack(
    split::SplitModel& model, const data::Dataset& train_set,
    const data::Dataset& eval_set, const runtime::NoisePolicy* policy,
    const AttackConfig& config);

}  // namespace attacks
}  // namespace shredder

#endif  // SHREDDER_ATTACKS_RECONSTRUCTION_H
