/**
 * @file
 * Source preprocessing for `shredder_lint` (src/lint/lint.h).
 *
 * The rule engine matches textual patterns, so it must not be fooled
 * by prose: a doc comment that *mentions* `throw` or a test fixture
 * that embeds a bad snippet inside a string literal is not a
 * violation. `scan_source` splits a translation unit into lines and
 * produces, per line, a `code` image in which the contents of
 * comments and string/character literals are masked out (replaced by
 * spaces, preserving column positions) plus the set of rules the
 * line's `// shredder-lint: allow(<rule>)` escape hatch names.
 *
 * The scanner is a deliberately small state machine — line comments,
 * block comments, string/char literals (with escapes) and raw string
 * literals — not a C++ parser. That is all the precision the rules in
 * src/lint/lint.cc need, and it keeps the linter dependency-free.
 */
#ifndef SHREDDER_LINT_SCANNER_H
#define SHREDDER_LINT_SCANNER_H

#include <string>
#include <vector>

namespace shredder {
namespace lint {

/** One physical source line, preprocessed for rule matching. */
struct ScannedLine
{
    /** The raw line, without its trailing newline. */
    std::string raw;

    /**
     * The line with comment and string/char literal *contents*
     * replaced by spaces (delimiters kept). Same length as `raw`, so
     * columns still correspond.
     */
    std::string code;

    /**
     * Rule names listed by a `shredder-lint: allow(raw-rng)` marker
     * on this line (empty for most lines; several names separate with
     * commas). `"all"` suppresses every rule.
     */
    std::vector<std::string> allowed;
};

/** A whole translation unit, preprocessed. Lines are 1-indexed + 1. */
struct ScannedSource
{
    std::vector<ScannedLine> lines;

    /** True when the last line lacked a terminating newline. */
    bool missing_final_newline = false;

    /** 1-indexed numbers of lines that ended in CR+LF. */
    std::vector<int> crlf_lines;
};

/** Preprocess `content` (the full text of one source file). */
ScannedSource scan_source(const std::string& content);

}  // namespace lint
}  // namespace shredder

#endif  // SHREDDER_LINT_SCANNER_H
