/**
 * @file
 * `shredder_lint` — the repo-specific trust-boundary lint.
 *
 * The project's written invariants (docs/DEPLOYMENT.md trust-boundary
 * rules, the policy contract, the RNG discipline) were previously
 * enforced by reviewer memory alone. This engine enforces them
 * mechanically, file by file:
 *
 *  - `untrusted-cast`    no raw `memcpy` / `reinterpret_cast` in the
 *                        directories that parse untrusted bytes
 *                        (`src/net/`, `src/deploy/`) — byte access
 *                        there must go through the checked `wire`
 *                        readers (src/tensor/serialize.h).
 *  - `unchecked-read`    no fatal `read_tensor(` / raw `.read(` /
 *                        `fread(` in those same directories; only the
 *                        `_checked` / `wire::` forms are typed at the
 *                        trust boundary.
 *  - `raw-rng`           no `rand()` / `srand()` / `std::mt19937` /
 *                        `std::random_device` outside the repo RNG
 *                        facility (src/tensor/rng.{h,cc}); every
 *                        stochastic component takes an `Rng&` so runs
 *                        replay from a single seed.
 *  - `foreign-throw`     inside the serving API (`src/runtime/`,
 *                        `src/net/`, `src/deploy/`) a `throw` must
 *                        construct `ServingError`, `SerializeError`
 *                        or `FatalError` (or be a re-throw) — callers
 *                        branch on typed codes, not message text.
 *  - `naked-new`         no `new` / `delete` expressions anywhere;
 *                        ownership lives in containers and smart
 *                        pointers (`= delete`d members are fine).
 *  - `lock-across-submit` no mutex guard alive at a `ThreadPool`
 *                        `submit(` call — a task body that re-locks
 *                        the same mutex deadlocks, and the pool's own
 *                        queue lock makes held-lock submission a
 *                        lock-order hazard. (Scope-heuristic rule.)
 *  - `format-trailing-ws` / `format-crlf` / `format-final-newline`
 *                        mechanical hygiene; these make the CI lint
 *                        job a complete format check.
 *
 * Any line can opt out with an inline escape hatch on the same line
 * or the line directly above:
 *
 *     // shredder-lint: allow(untrusted-cast)  — POSIX sockaddr cast
 *
 * Suppressions are per-rule (comma-separate several; `all` allows
 * everything) and deliberately loud: they are grep-able review
 * evidence that a human accepted the exception.
 *
 * The engine lints in-memory content under a repo-relative *virtual*
 * path, so its own test suite (tests/test_lint.cc) feeds synthetic
 * files through the exact production code path, and the CLI
 * (tools/shredder_lint.cc) is a thin directory walker on top.
 */
#ifndef SHREDDER_LINT_LINT_H
#define SHREDDER_LINT_LINT_H

#include <cstddef>
#include <string>
#include <vector>

namespace shredder {
namespace lint {

/** One rule violation, anchored to a file and 1-indexed line. */
struct Finding
{
    std::string file;     ///< Repo-relative path (as given to lint).
    int line = 0;         ///< 1-indexed line number.
    std::string rule;     ///< Rule identifier (e.g. "raw-rng").
    std::string message;  ///< Human-readable explanation.
};

/** Static description of one rule (for `--list-rules` and docs). */
struct RuleInfo
{
    const char* name;
    const char* summary;
};

/** All rules the engine knows, in reporting order. */
const std::vector<RuleInfo>& rule_catalog();

/** True when `name` is a known rule identifier. */
bool is_known_rule(const std::string& name);

/**
 * Lint one translation unit given as in-memory text.
 *
 * @param path     Repo-relative path; directory prefixes decide which
 *                 rules apply (see file comment).
 * @param content  Full text of the file.
 * @return         Findings in line order (suppressed ones excluded).
 */
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/**
 * Serialize a lint run as the machine-readable summary the CI job
 * uploads: counts per rule plus every finding with file/line.
 */
std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned);

}  // namespace lint
}  // namespace shredder

#endif  // SHREDDER_LINT_LINT_H
