/**
 * @file
 * Implementation of the lint source scanner (src/lint/scanner.h).
 */
#include "src/lint/scanner.h"

#include <cctype>
#include <cstddef>

namespace shredder {
namespace lint {

namespace {

/** Lexical region the scanner is inside between characters. */
enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
};

/**
 * Extract the rules named by a `shredder-lint: allow(raw-rng)` marker
 * in `raw`, if any. The marker is looked up on the raw text (it lives
 * in a comment, which the code image masks out).
 */
std::vector<std::string>
parse_allow_marker(const std::string& raw)
{
    std::vector<std::string> rules;
    const std::string key = "shredder-lint:";
    const std::size_t at = raw.find(key);
    if (at == std::string::npos) {
        return rules;
    }
    std::size_t i = at + key.size();
    while (i < raw.size() && raw[i] == ' ') {
        ++i;
    }
    const std::string verb = "allow(";
    if (raw.compare(i, verb.size(), verb) != 0) {
        return rules;
    }
    i += verb.size();
    // Rule names are lowercase-kebab identifiers. Anything else means
    // the "marker" is prose *about* the syntax (docs, error-message
    // strings), not a real suppression — treat the line as markerless.
    const auto valid_name = [](const std::string& name) {
        if (name.empty() ||
            !(name[0] >= 'a' && name[0] <= 'z')) {
            return false;
        }
        for (const char c : name) {
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '-')) {
                return false;
            }
        }
        return true;
    };
    std::string current;
    for (; i < raw.size(); ++i) {
        const char c = raw[i];
        if (c == ')') {
            if (!current.empty()) {
                rules.push_back(current);
            }
            for (const std::string& name : rules) {
                if (!valid_name(name)) {
                    return {};
                }
            }
            return rules;
        }
        if (c == ',') {
            if (!current.empty()) {
                rules.push_back(current);
            }
            current.clear();
        } else if (c != ' ') {
            current.push_back(c);
        }
    }
    // Unterminated marker: treat as no marker rather than guessing.
    return {};
}

}  // namespace

ScannedSource
scan_source(const std::string& content)
{
    ScannedSource out;
    std::string raw;
    std::string code;
    State state = State::kCode;
    std::string raw_delim;  // delimiter of the active raw string

    auto flush_line = [&](bool had_newline, bool had_cr) {
        ScannedLine line;
        line.raw = raw;
        line.code = code;
        line.allowed = parse_allow_marker(raw);
        out.lines.push_back(std::move(line));
        if (had_cr) {
            out.crlf_lines.push_back(static_cast<int>(out.lines.size()));
        }
        if (!had_newline) {
            out.missing_final_newline = true;
        }
        raw.clear();
        code.clear();
        // A line comment never spans lines; strings legally cannot
        // either (an unterminated one is already an error upstream).
        if (state == State::kLineComment || state == State::kString ||
            state == State::kChar) {
            state = State::kCode;
        }
    };

    const std::size_t n = content.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = content[i];
        if (c == '\n') {
            const bool had_cr = !raw.empty() && raw.back() == '\r';
            if (had_cr) {
                raw.pop_back();
                code.pop_back();
            }
            flush_line(/*had_newline=*/true, had_cr);
            continue;
        }
        raw.push_back(c);

        switch (state) {
          case State::kCode: {
            const char next = i + 1 < n ? content[i + 1] : '\0';
            if (c == '/' && next == '/') {
                state = State::kLineComment;
                code.push_back(c);
            } else if (c == '/' && next == '*') {
                state = State::kBlockComment;
                code.push_back(c);
            } else if (c == '"') {
                // R"delim( opens a raw string; the R (and an optional
                // encoding prefix) was already emitted as code, which
                // is fine — only the *contents* must be masked.
                if (!raw.empty() && raw.size() >= 2 &&
                    raw[raw.size() - 2] == 'R') {
                    raw_delim.clear();
                    std::size_t j = i + 1;
                    while (j < n && content[j] != '(' &&
                           content[j] != '\n' &&
                           raw_delim.size() <= 16) {
                        raw_delim.push_back(content[j]);
                        ++j;
                    }
                    state = State::kRawString;
                } else {
                    state = State::kString;
                }
                code.push_back(c);
            } else if (c == '\'') {
                // Heuristic: a quote after an identifier/number char is
                // a C++14 digit separator (1'000), not a char literal.
                const char prev = raw.size() >= 2 ? raw[raw.size() - 2]
                                                  : '\0';
                if (std::isalnum(static_cast<unsigned char>(prev)) ||
                    prev == '_') {
                    code.push_back(c);
                } else {
                    state = State::kChar;
                    code.push_back(c);
                }
            } else {
                code.push_back(c);
            }
            break;
          }
          case State::kLineComment:
            code.push_back(' ');
            break;
          case State::kBlockComment:
            if (c == '/' && raw.size() >= 2 &&
                raw[raw.size() - 2] == '*') {
                state = State::kCode;
                code.push_back(c);
            } else {
                code.push_back(' ');
            }
            break;
          case State::kString:
          case State::kChar: {
            const char quote = state == State::kString ? '"' : '\'';
            // Count the backslashes immediately before `c` in raw
            // (excluding c itself) to decide whether it is escaped.
            std::size_t backslashes = 0;
            for (std::size_t j = raw.size() - 1; j-- > 0;) {
                if (raw[j] == '\\') {
                    ++backslashes;
                } else {
                    break;
                }
            }
            if (c == quote && backslashes % 2 == 0) {
                state = State::kCode;
                code.push_back(c);
            } else {
                code.push_back(' ');
            }
            break;
          }
          case State::kRawString: {
            // Close on )delim" — compare the raw tail.
            const std::string closer = ")" + raw_delim + "\"";
            if (c == '"' && raw.size() >= closer.size() &&
                raw.compare(raw.size() - closer.size(), closer.size(),
                            closer) == 0) {
                state = State::kCode;
                code.push_back(c);
            } else {
                code.push_back(' ');
            }
            break;
          }
        }
    }

    if (!raw.empty()) {
        flush_line(/*had_newline=*/false, /*had_cr=*/false);
    } else if (content.empty()) {
        // An empty file scans to zero lines and no findings.
    }

    return out;
}

}  // namespace lint
}  // namespace shredder
