/**
 * @file
 * Rule engine for `shredder_lint` (src/lint/lint.h).
 *
 * Every rule works on the masked `code` image produced by
 * src/lint/scanner.h, so comments and string literals can never
 * trigger (or hide) a violation. Rules are deliberately textual: the
 * point is cheap, dependency-free enforcement of repo invariants, not
 * a C++ front end. Where a rule is a heuristic (lock-across-submit)
 * the file comment in lint.h says so.
 */
#include "src/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <regex>
#include <sstream>

#include "src/lint/scanner.h"

namespace shredder {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification: directory prefixes decide which rules apply.
// ---------------------------------------------------------------------------

bool
starts_with(const std::string& s, const char* prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Directories whose files parse bytes from outside the trust boundary. */
bool
parses_untrusted_bytes(const std::string& path)
{
    return starts_with(path, "src/net/") || starts_with(path, "src/deploy/");
}

/** Directories forming the serving API (typed-error discipline). */
bool
in_serving_api(const std::string& path)
{
    return starts_with(path, "src/runtime/") ||
           starts_with(path, "src/net/") || starts_with(path, "src/deploy/");
}

/** The one place allowed to own a raw standard-library engine. */
bool
is_rng_facility(const std::string& path)
{
    return path == "src/tensor/rng.h" || path == "src/tensor/rng.cc";
}

// ---------------------------------------------------------------------------
// Rule catalog.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"untrusted-cast",
     "no memcpy/reinterpret_cast where untrusted bytes are parsed "
     "(src/net/, src/deploy/) — use the checked wire readers"},
    {"unchecked-read",
     "no fatal read_tensor(/raw .read(/fread( at the trust boundary — "
     "only the _checked / wire:: forms are typed"},
    {"raw-rng",
     "no rand()/srand()/std::mt19937/std::random_device outside "
     "src/tensor/rng.{h,cc} — take an Rng& so runs replay from a seed"},
    {"foreign-throw",
     "serving-API throws must construct ServingError, SerializeError "
     "or FatalError (or re-throw) — callers branch on typed codes"},
    {"naked-new",
     "no new/delete expressions — ownership lives in containers and "
     "smart pointers"},
    {"lock-across-submit",
     "no mutex guard alive at a ThreadPool submit( call (heuristic, "
     "scope-tracked)"},
    {"unknown-allow",
     "a shredder-lint: allow(...) marker names a rule that does not "
     "exist (typo-guard for the escape hatch)"},
    {"format-trailing-ws", "no trailing whitespace"},
    {"format-crlf", "LF line endings only"},
    {"format-final-newline", "files end with exactly one newline"},
};

// ---------------------------------------------------------------------------
// Regexes (compiled once; every use is guarded by a cheap find()).
// ---------------------------------------------------------------------------

const std::regex kMemcpyRe{R"(\b(?:std::)?memcpy\s*\()"};
const std::regex kReinterpretRe{R"(\breinterpret_cast\b)"};
const std::regex kFatalReadTensorRe{R"(\bread_tensor\s*\()"};
const std::regex kRawStreamReadRe{R"((?:\.|->)\s*read\s*\()"};
const std::regex kFreadRe{R"(\bfread\s*\()"};
const std::regex kRandRe{R"(\b(?:rand|srand)\s*\()"};
const std::regex kMtRe{R"(\bmt19937(?:_64)?\b)"};
const std::regex kRandomDeviceRe{R"(\brandom_device\b)"};
const std::regex kThrowRe{R"(\bthrow\b)"};
const std::regex kAllowedThrowRe{
    R"(\bthrow\s*(?:;|(?:[A-Za-z_][A-Za-z0-9_]*::)*(?:ServingError|SerializeError|FatalError)\s*[({]))"};
const std::regex kNewRe{R"(\bnew\b)"};
const std::regex kDeleteRe{R"(\bdelete\b)"};
const std::regex kLockDeclRe{
    R"(\b(?:std::)?(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*(?:<[^;<>]*>)?\s+([A-Za-z_][A-Za-z0-9_]*)\s*[({])"};
const std::regex kUnlockRe{R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*unlock\s*\()"};
const std::regex kPoolSubmitRe{
    R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\.|->)\s*submit\s*\()"};
const std::regex kGlobalPoolSubmitRe{
    R"(ThreadPool::global\(\)\s*\.\s*submit\s*\()"};

/** Case-insensitive "does this identifier look like a thread pool?". */
bool
looks_like_pool(std::string name)
{
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return name.find("pool") != std::string::npos;
}

/** True when a preprocessor directive owns the line (#include <new>). */
bool
is_preprocessor(const std::string& code)
{
    const std::size_t first = code.find_first_not_of(" \t");
    return first != std::string::npos && code[first] == '#';
}

/**
 * True when every `delete` on the line is a deleted-member marker
 * (`= delete`), i.e. the nearest non-space char before it is '='.
 */
bool
delete_is_expression(const std::string& code, std::size_t pos)
{
    while (pos > 0) {
        const char c = code[pos - 1];
        if (c == ' ' || c == '\t') {
            --pos;
            continue;
        }
        return c != '=';
    }
    return true;
}

struct ActiveLock
{
    std::string name;
    int depth;
};

}  // namespace

const std::vector<RuleInfo>&
rule_catalog()
{
    return kRules;
}

bool
is_known_rule(const std::string& name)
{
    if (name == "all") {
        return true;
    }
    return std::any_of(kRules.begin(), kRules.end(),
                       [&](const RuleInfo& r) { return name == r.name; });
}

std::vector<Finding>
lint_source(const std::string& path, const std::string& content)
{
    const ScannedSource src = scan_source(content);
    std::vector<Finding> raw_findings;

    auto add = [&](int line, const char* rule, std::string message) {
        raw_findings.push_back(Finding{path, line, rule,
                                       std::move(message)});
    };

    const bool untrusted = parses_untrusted_bytes(path);
    const bool serving = in_serving_api(path);
    const bool rng_ok = is_rng_facility(path);

    int depth = 0;
    std::vector<ActiveLock> locks;

    for (std::size_t idx = 0; idx < src.lines.size(); ++idx) {
        const int lineno = static_cast<int>(idx) + 1;
        const std::string& raw = src.lines[idx].raw;
        const std::string& code = src.lines[idx].code;

        // --- escape-hatch typo guard (checked on every line) -------------
        for (const std::string& rule : src.lines[idx].allowed) {
            if (!is_known_rule(rule)) {
                add(lineno, "unknown-allow",
                    "allow(" + rule + ") names no shredder_lint rule");
            }
        }

        // --- format rules ------------------------------------------------
        if (!raw.empty() &&
            (raw.back() == ' ' || raw.back() == '\t')) {
            add(lineno, "format-trailing-ws", "trailing whitespace");
        }

        // --- trust-boundary byte access ----------------------------------
        if (untrusted) {
            if (code.find("memcpy") != std::string::npos &&
                std::regex_search(code, kMemcpyRe)) {
                add(lineno, "untrusted-cast",
                    "memcpy in an untrusted-parsing directory — use the "
                    "checked wire readers (src/tensor/serialize.h)");
            }
            if (code.find("reinterpret_cast") != std::string::npos &&
                std::regex_search(code, kReinterpretRe)) {
                add(lineno, "untrusted-cast",
                    "reinterpret_cast in an untrusted-parsing directory "
                    "— use the checked wire readers");
            }
            if (code.find("read") != std::string::npos) {
                if (std::regex_search(code, kFatalReadTensorRe)) {
                    add(lineno, "unchecked-read",
                        "fatal read_tensor( at the trust boundary — use "
                        "read_tensor_checked / read_tensor_wire_checked");
                }
                if (std::regex_search(code, kRawStreamReadRe)) {
                    add(lineno, "unchecked-read",
                        "raw stream .read( at the trust boundary — use "
                        "the wire:: checked readers");
                }
                if (std::regex_search(code, kFreadRe)) {
                    add(lineno, "unchecked-read",
                        "fread( at the trust boundary — use the wire:: "
                        "checked readers");
                }
            }
        }

        // --- RNG discipline ----------------------------------------------
        if (!rng_ok) {
            if (code.find("rand") != std::string::npos &&
                std::regex_search(code, kRandRe)) {
                add(lineno, "raw-rng",
                    "rand()/srand() — use shredder::Rng "
                    "(src/tensor/rng.h) so runs replay from a seed");
            }
            if (code.find("mt19937") != std::string::npos &&
                std::regex_search(code, kMtRe)) {
                add(lineno, "raw-rng",
                    "raw std::mt19937 engine — use shredder::Rng "
                    "(src/tensor/rng.h)");
            }
            if (code.find("random_device") != std::string::npos &&
                std::regex_search(code, kRandomDeviceRe)) {
                add(lineno, "raw-rng",
                    "std::random_device is non-replayable — seed a "
                    "shredder::Rng instead");
            }
        }

        // --- typed-error discipline --------------------------------------
        if (serving && code.find("throw") != std::string::npos &&
            std::regex_search(code, kThrowRe)) {
            // A `throw` at end of line continues on the next line; give
            // the accept-pattern the joined view.
            std::string view = code;
            const std::size_t at = view.find("throw");
            const bool tail_empty =
                view.find_first_not_of(" \t", at + 5) == std::string::npos;
            if (tail_empty && idx + 1 < src.lines.size()) {
                view += " " + src.lines[idx + 1].code;
            }
            if (!std::regex_search(view, kAllowedThrowRe)) {
                add(lineno, "foreign-throw",
                    "serving-API throw of a foreign type — throw "
                    "ServingError/SerializeError (typed codes) instead");
            }
        }

        // --- ownership discipline ----------------------------------------
        if (!is_preprocessor(code)) {
            if (code.find("new") != std::string::npos &&
                std::regex_search(code, kNewRe)) {
                add(lineno, "naked-new",
                    "naked new — use make_unique/make_shared or a "
                    "container");
            }
            if (code.find("delete") != std::string::npos) {
                auto begin = std::sregex_iterator(code.begin(), code.end(),
                                                  kDeleteRe);
                for (auto it = begin; it != std::sregex_iterator(); ++it) {
                    if (delete_is_expression(
                            code, static_cast<std::size_t>(
                                      it->position()))) {
                        add(lineno, "naked-new",
                            "naked delete — use RAII ownership");
                        break;
                    }
                }
            }
        }

        // --- lock-across-submit (scope heuristic) ------------------------
        //
        // Events on the line (guard declarations, explicit unlocks,
        // pool submits, braces) are replayed in column order so depth
        // bookkeeping stays correct even when several share a line.
        {
            enum class EventKind { kDecl, kUnlock, kSubmit };
            struct Event
            {
                std::size_t pos;
                EventKind kind;
                std::string name;
            };
            std::vector<Event> events;
            if (code.find("lock_guard") != std::string::npos ||
                code.find("unique_lock") != std::string::npos ||
                code.find("scoped_lock") != std::string::npos ||
                code.find("shared_lock") != std::string::npos) {
                auto begin = std::sregex_iterator(code.begin(), code.end(),
                                                  kLockDeclRe);
                for (auto it = begin; it != std::sregex_iterator(); ++it) {
                    events.push_back(
                        Event{static_cast<std::size_t>(it->position()),
                              EventKind::kDecl, (*it)[1].str()});
                }
            }
            if (code.find("unlock") != std::string::npos) {
                auto begin = std::sregex_iterator(code.begin(), code.end(),
                                                  kUnlockRe);
                for (auto it = begin; it != std::sregex_iterator(); ++it) {
                    events.push_back(
                        Event{static_cast<std::size_t>(it->position()),
                              EventKind::kUnlock, (*it)[1].str()});
                }
            }
            if (code.find("submit") != std::string::npos) {
                auto begin = std::sregex_iterator(code.begin(), code.end(),
                                                  kPoolSubmitRe);
                for (auto it = begin; it != std::sregex_iterator(); ++it) {
                    if (looks_like_pool((*it)[1].str())) {
                        events.push_back(
                            Event{static_cast<std::size_t>(it->position()),
                                  EventKind::kSubmit, (*it)[1].str()});
                    }
                }
                std::smatch global_submit;
                if (std::regex_search(code, global_submit,
                                      kGlobalPoolSubmitRe)) {
                    events.push_back(Event{
                        static_cast<std::size_t>(global_submit.position()),
                        EventKind::kSubmit, "ThreadPool::global()"});
                }
            }
            std::sort(events.begin(), events.end(),
                      [](const Event& a, const Event& b) {
                          return a.pos < b.pos;
                      });
            std::size_t next_event = 0;
            for (std::size_t col = 0; col <= code.size(); ++col) {
                while (next_event < events.size() &&
                       events[next_event].pos == col) {
                    const Event& ev = events[next_event++];
                    switch (ev.kind) {
                      case EventKind::kDecl:
                        locks.push_back(ActiveLock{ev.name, depth});
                        break;
                      case EventKind::kUnlock:
                        locks.erase(
                            std::remove_if(locks.begin(), locks.end(),
                                           [&](const ActiveLock& l) {
                                               return l.name == ev.name;
                                           }),
                            locks.end());
                        break;
                      case EventKind::kSubmit:
                        if (!locks.empty()) {
                            add(lineno, "lock-across-submit",
                                "ThreadPool submit( while '" +
                                    locks.back().name +
                                    "' is held — release the guard "
                                    "first");
                        }
                        break;
                    }
                }
                if (col == code.size()) {
                    break;
                }
                const char c = code[col];
                if (c == '{') {
                    ++depth;
                } else if (c == '}') {
                    depth = std::max(0, depth - 1);
                    locks.erase(std::remove_if(
                                    locks.begin(), locks.end(),
                                    [&](const ActiveLock& l) {
                                        return l.depth > depth;
                                    }),
                                locks.end());
                }
            }
            if (depth == 0) {
                locks.clear();
            }
        }
    }

    for (const int lineno : src.crlf_lines) {
        add(lineno, "format-crlf", "CRLF line ending");
    }
    if (src.missing_final_newline && !src.lines.empty()) {
        add(static_cast<int>(src.lines.size()), "format-final-newline",
            "file does not end with a newline");
    }

    // Apply suppressions: an allow marker on the finding's line or the
    // line directly above silences that rule there.
    std::vector<Finding> out;
    for (Finding& f : raw_findings) {
        bool suppressed = false;
        if (f.rule != std::string("unknown-allow")) {
            for (int l = f.line - 1; l <= f.line && !suppressed; ++l) {
                if (l < 1 ||
                    static_cast<std::size_t>(l) > src.lines.size()) {
                    continue;
                }
                for (const std::string& rule :
                     src.lines[static_cast<std::size_t>(l) - 1].allowed) {
                    if (rule == f.rule || rule == "all") {
                        suppressed = true;
                        break;
                    }
                }
            }
        }
        if (!suppressed) {
            out.push_back(std::move(f));
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Finding& a, const Finding& b) {
                         return a.line < b.line;
                     });
    return out;
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

std::string
findings_to_json(const std::vector<Finding>& findings,
                 std::size_t files_scanned)
{
    std::map<std::string, int> counts;
    for (const Finding& f : findings) {
        ++counts[f.rule];
    }
    std::ostringstream os;
    os << "{\n";
    os << "  \"tool\": \"shredder_lint\",\n";
    os << "  \"schema\": \"shredder-lint-v1\",\n";
    os << "  \"files_scanned\": " << files_scanned << ",\n";
    os << "  \"finding_count\": " << findings.size() << ",\n";
    os << "  \"counts\": {";
    bool first = true;
    for (const auto& [rule, n] : counts) {
        os << (first ? "" : ", ") << "\"" << rule << "\": " << n;
        first = false;
    }
    os << "},\n";
    os << "  \"findings\": [";
    first = true;
    for (const Finding& f : findings) {
        os << (first ? "\n" : ",\n");
        os << "    {\"file\": \"" << json_escape(f.file)
           << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
           << "\", \"message\": \"" << json_escape(f.message) << "\"}";
        first = false;
    }
    os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

}  // namespace lint
}  // namespace shredder
