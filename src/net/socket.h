/**
 * @file
 * Thin RAII wrappers over POSIX TCP sockets.
 *
 * Everything the `net` subsystem touches at the OS level lives here:
 * a connected `Socket` (full-buffer send/recv helpers, partial reads
 * for framing) and a bound `Listener` whose `accept` can be unblocked
 * from another thread via `close()` (self-pipe wakeup, so shutdown
 * never races the kernel's accept queue).
 *
 * Failure discipline: socket-level trouble (connect refused, send
 * failure, peer disconnect mid-buffer) throws a typed
 * `runtime::ServingError` with code `kNetwork`. A *clean* EOF — the
 * peer closed between frames — is not an error; `recv_some` returns 0
 * and the framing layer (protocol.h) decides whether the stream
 * position makes that a graceful close or a truncated frame.
 */
#ifndef SHREDDER_NET_SOCKET_H
#define SHREDDER_NET_SOCKET_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/runtime/serving_error.h"

namespace shredder {
namespace net {

/** One connected TCP stream (movable, non-copyable). */
class Socket
{
  public:
    /** Wrap an already-connected file descriptor (takes ownership). */
    explicit Socket(int fd = -1) : fd_(fd) {}

    /**
     * Connect to `host:port` (numeric IPv4 or a resolvable name).
     * @throws runtime::ServingError `kNetwork` on resolution or
     *         connection failure.
     */
    static Socket connect(const std::string& host, std::uint16_t port);

    ~Socket();
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    /** True while the descriptor is open. */
    bool valid() const { return fd_ >= 0; }

    /**
     * Send the whole buffer (looping over partial writes).
     * @throws runtime::ServingError `kNetwork` on any send failure
     *         (including the peer resetting the connection).
     */
    void send_all(const void* data, std::size_t len);

    /**
     * Receive up to `len` bytes; returns the count actually read, or
     * 0 on a clean peer close. Retries EINTR; throws `kNetwork` on
     * a real socket error.
     */
    std::size_t recv_some(void* data, std::size_t len);

    /**
     * Receive exactly `len` bytes. A peer close before the buffer is
     * full is a mid-transfer disconnect: throws `kNetwork`.
     */
    void recv_all(void* data, std::size_t len);

    /**
     * Look at up to `len` bytes WITHOUT consuming them (`MSG_PEEK`):
     * blocks until at least one byte is available, then returns
     * however many the kernel holds (possibly fewer than `len`), or 0
     * on a clean peer close. The server's front door uses this to
     * demux protocols on one listener — the peeked bytes are still
     * the stream's next bytes for whichever parser wins. Retries
     * EINTR; throws `kNetwork` on a real socket error.
     */
    std::size_t peek(void* data, std::size_t len);

    /** Half-close the send direction (signals EOF to the peer). */
    void shutdown_send();

    /**
     * Shut both directions down without releasing the fd — the
     * thread-safe way to unblock a peer thread stuck in `recv_some`
     * (it observes a clean close); the descriptor itself dies with
     * the object.
     */
    void shutdown_both();

    /** Close the descriptor (idempotent). */
    void close();

  private:
    int fd_;
};

/**
 * A listening TCP socket. `accept` blocks until a connection arrives
 * or `close()` is called from any thread (returning an invalid
 * `Socket` in that case — the shutdown path, not an error).
 */
class Listener
{
  public:
    /**
     * Bind `host:port` and listen. Port 0 binds an ephemeral port;
     * read the actual one back with `port()`.
     * @throws runtime::ServingError `kNetwork` on bind/listen failure
     *         (e.g. the port is taken).
     */
    Listener(const std::string& host, std::uint16_t port);

    ~Listener();
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /** The locally bound port (the ephemeral one when 0 was asked). */
    std::uint16_t port() const { return port_; }

    /**
     * Wait for the next connection. Returns an invalid `Socket` once
     * `close()` has been called; throws `kNetwork` on a real accept
     * failure.
     */
    Socket accept();

    /**
     * Stop listening and wake any blocked `accept` (thread-safe,
     * idempotent). The descriptor itself is only released by the
     * destructor, so a concurrent `accept` never touches a recycled
     * fd. Called by the destructor too.
     */
    void close();

  private:
    int fd_ = -1;
    int wake_read_ = -1;   ///< Self-pipe: accept() polls this too.
    int wake_write_ = -1;  ///< close() writes one byte to wake accept.
    std::uint16_t port_ = 0;
    std::atomic<bool> closing_{false};
};

}  // namespace net
}  // namespace shredder

#endif  // SHREDDER_NET_SOCKET_H
