/**
 * @file
 * Implementation of the Prometheus text exposition (see header).
 */
#include "src/net/metrics.h"

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/net/server.h"

namespace shredder {
namespace net {

namespace {

using runtime::ServerStats;

/** One endpoint's snapshot, taken once per scrape. */
struct EndpointSnapshot
{
    std::string name;
    std::string shard;
    ServerStats stats;
};

/** Emit the `# HELP`/`# TYPE` preamble of one family. */
void
family(std::ostringstream& os, const char* name, const char* type,
       const char* help)
{
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
}

/** One `name{endpoint="..."} value` sample line. */
template <typename Value>
void
sample(std::ostringstream& os, const char* name,
       const std::string& endpoint, Value value)
{
    os << name << "{endpoint=\"" << escape_label_value(endpoint) << "\"} "
       << value << '\n';
}

/** A whole per-endpoint counter/gauge family in one go. */
template <typename Getter>
void
endpoint_family(std::ostringstream& os,
                const std::vector<EndpointSnapshot>& endpoints,
                const char* name, const char* type, const char* help,
                Getter getter)
{
    family(os, name, type, help);
    for (const EndpointSnapshot& ep : endpoints) {
        sample(os, name, ep.name, getter(ep.stats));
    }
}

/**
 * The queue-wait histogram family. Internal buckets are "≤ 2^i µs"
 * with the last bucket absorbing overflow (ServerStats), which maps
 * exactly onto cumulative `le` buckets in seconds plus `+Inf`.
 */
void
queue_wait_family(std::ostringstream& os,
                  const std::vector<EndpointSnapshot>& endpoints)
{
    family(os, "shredder_queue_wait_seconds", "histogram",
           "Per-request queue wait before batch dispatch.");
    for (const EndpointSnapshot& ep : endpoints) {
        std::int64_t cumulative = 0;
        std::int64_t total = 0;
        for (int i = 0; i < ServerStats::kQueueWaitBuckets; ++i) {
            total += ep.stats.queue_wait_hist[i];
        }
        for (int i = 0; i < ServerStats::kQueueWaitBuckets - 1; ++i) {
            cumulative += ep.stats.queue_wait_hist[i];
            const double le = static_cast<double>(std::int64_t{1} << i) /
                              1e6;  // bucket bound: 2^i µs, in seconds
            os << "shredder_queue_wait_seconds_bucket{endpoint=\""
               << escape_label_value(ep.name) << "\",le=\"" << le
               << "\"} " << cumulative << '\n';
        }
        os << "shredder_queue_wait_seconds_bucket{endpoint=\""
           << escape_label_value(ep.name) << "\",le=\"+Inf\"} " << total
           << '\n';
        os << "shredder_queue_wait_seconds_sum{endpoint=\""
           << escape_label_value(ep.name) << "\"} "
           << ep.stats.queue_ms / 1000.0 << '\n';
        os << "shredder_queue_wait_seconds_count{endpoint=\""
           << escape_label_value(ep.name) << "\"} " << total << '\n';
    }
}

}  // namespace

std::string
escape_label_value(const std::string& value)
{
    std::string escaped;
    escaped.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\': escaped += "\\\\"; break;
        case '"': escaped += "\\\""; break;
        case '\n': escaped += "\\n"; break;
        default: escaped += c; break;
        }
    }
    return escaped;
}

std::string
render_metrics(const runtime::ServingEngine& engine,
               const ServerNetStats& net)
{
    std::ostringstream os;
    // Full double round-trip precision: counters must never regress
    // between scrapes because of formatting truncation.
    os.precision(std::numeric_limits<double>::max_digits10);

    std::vector<EndpointSnapshot> endpoints;
    for (const std::string& name : engine.endpoint_names()) {
        EndpointSnapshot ep;
        ep.name = name;
        // A concurrent deregistration can race the name listing; skip
        // names that vanished rather than failing the whole scrape.
        try {
            ep.stats = engine.stats(name);
            ep.shard = engine.shard_of(name);
        } catch (const runtime::ServingError&) {
            continue;
        }
        endpoints.push_back(std::move(ep));
    }

    endpoint_family(os, endpoints, "shredder_requests_total", "counter",
                    "Requests completed.",
                    [](const ServerStats& s) { return s.requests; });
    endpoint_family(os, endpoints, "shredder_batches_total", "counter",
                    "Cloud-forward batches executed.",
                    [](const ServerStats& s) { return s.batches; });
    endpoint_family(os, endpoints, "shredder_busy_seconds_total",
                    "counter", "Total batch execution time.",
                    [](const ServerStats& s) { return s.busy_ms / 1000.0; });
    queue_wait_family(os, endpoints);
    endpoint_family(os, endpoints, "shredder_quantized_requests_total",
                    "counter",
                    "Requests that arrived in quantized wire encoding.",
                    [](const ServerStats& s) {
                        return s.quantized_requests;
                    });
    endpoint_family(os, endpoints, "shredder_int8_direct_batches_total",
                    "counter",
                    "Batches served by the int8 direct-consume GEMM path.",
                    [](const ServerStats& s) {
                        return s.int8_direct_batches;
                    });
    endpoint_family(os, endpoints, "shredder_fp32_fused_batches_total",
                    "counter",
                    "Batches served by the fused-noise fp32 GEMM path.",
                    [](const ServerStats& s) {
                        return s.fp32_fused_batches;
                    });
    endpoint_family(os, endpoints, "shredder_rate_limited_total",
                    "counter",
                    "Submits rejected by the token-bucket rate limit.",
                    [](const ServerStats& s) { return s.rate_limited; });
    endpoint_family(os, endpoints, "shredder_admission_rejected_total",
                    "counter",
                    "Submits rejected by the in-flight cap.",
                    [](const ServerStats& s) {
                        return s.admission_rejected;
                    });
    endpoint_family(os, endpoints, "shredder_in_flight", "gauge",
                    "Requests admitted but not yet answered.",
                    [](const ServerStats& s) { return s.in_flight; });

    family(os, "shredder_endpoint_shard_info", "gauge",
           "Shard placement of each endpoint (value is always 1).");
    for (const EndpointSnapshot& ep : endpoints) {
        os << "shredder_endpoint_shard_info{endpoint=\""
           << escape_label_value(ep.name) << "\",shard=\""
           << escape_label_value(ep.shard) << "\"} 1\n";
    }

    const std::vector<runtime::ShardInfo> shards = engine.shard_info();
    family(os, "shredder_shard_threads", "gauge",
           "Worker threads in each pool shard.");
    for (const runtime::ShardInfo& shard : shards) {
        os << "shredder_shard_threads{shard=\""
           << escape_label_value(shard.name) << "\"} " << shard.threads
           << '\n';
    }
    family(os, "shredder_shard_endpoints", "gauge",
           "Endpoints placed on each pool shard.");
    for (const runtime::ShardInfo& shard : shards) {
        os << "shredder_shard_endpoints{shard=\""
           << escape_label_value(shard.name) << "\"} "
           << shard.endpoints.size() << '\n';
    }

    const deploy::WeightRegistryStats registry =
        engine.weight_registry_stats();
    family(os, "shredder_weights_interned_total", "counter",
           "Networks interned through the weight registry.");
    os << "shredder_weights_interned_total " << registry.interned_networks
       << '\n';
    family(os, "shredder_weights_unique_sets", "gauge",
           "Distinct weight sets the registry holds canonically.");
    os << "shredder_weights_unique_sets " << registry.unique_weight_sets
       << '\n';
    family(os, "shredder_weights_dedupe_bytes_total", "counter",
           "Parameter bytes saved by weight aliasing.");
    os << "shredder_weights_dedupe_bytes_total "
       << registry.weights_dedupe_bytes << '\n';

    family(os, "shredder_net_connections_accepted_total", "counter",
           "TCP connections accepted.");
    os << "shredder_net_connections_accepted_total "
       << net.connections_accepted << '\n';
    family(os, "shredder_net_connections_active", "gauge",
           "TCP connections currently open.");
    os << "shredder_net_connections_active " << net.connections_active
       << '\n';
    family(os, "shredder_net_frames_served_total", "counter",
           "SHRP response frames written (any status).");
    os << "shredder_net_frames_served_total " << net.frames_served << '\n';
    family(os, "shredder_net_protocol_errors_total", "counter",
           "Malformed frames survived.");
    os << "shredder_net_protocol_errors_total " << net.protocol_errors
       << '\n';
    family(os, "shredder_net_http_requests_total", "counter",
           "HTTP GETs demuxed off the listener (any path).");
    os << "shredder_net_http_requests_total " << net.http_requests << '\n';
    family(os, "shredder_net_metrics_requests_total", "counter",
           "GET /metrics scrapes served.");
    os << "shredder_net_metrics_requests_total " << net.metrics_requests
       << '\n';

    return os.str();
}

}  // namespace net
}  // namespace shredder
