/**
 * @file
 * The Shredder activation wire protocol — `SHRQ` / `SHRP` frames.
 *
 * This is the byte boundary between the edge device and the cloud
 * half: an edge client ships one noised (or to-be-noised) activation
 * per request frame and gets one logits tensor (or a typed error)
 * back per response frame. Both directions use the same length-
 * prefixed envelope:
 *
 *   magic        u32   'SHRQ' (request) / 'SHRP' (response)
 *   version      u32   kProtocolVersion (readers reject greater)
 *   payload_len  u32   bytes that follow (≤ kMaxFramePayload)
 *   payload      ...   see below
 *
 * Request payload:   request_id u64, endpoint wire-string,
 *                    activation `SHRT` tensor (v1 fp32 or the v2
 *                    quantized header of src/tensor/serialize.h).
 * Response payload:  request_id u64 (echoed), status u32
 *                    (`WireStatus`), then on kOk the output `SHRT`
 *                    tensor, otherwise a wire-string error message.
 *
 * Protocol v2 adds quantized request activations: a request whose
 * tensor uses the SHRT v2 header stamps envelope version 2; fp32
 * requests and all responses keep stamping version 1, so an fp32
 * client/server pair interoperates bit-for-bit with v1 builds and a
 * v1 server answers an int8 client with a typed "newer version"
 * error instead of misparsing the tensor.
 *
 * Every multi-byte field is little-endian and parsed exclusively
 * through the checked `wire` readers of src/tensor/serialize.h — the
 * same trust-boundary discipline deployment bundles use. Anything
 * malformed (bad magic, future version, oversize or short payload,
 * trailing bytes after the payload, a lying tensor header) throws
 * `runtime::ServingError` with code `kProtocol`; a transport-level
 * failure mid-frame throws `kNetwork`. Parsing NEVER terminates the
 * process: frames arrive from the network.
 *
 * Versioning rule (normative, docs/DEPLOYMENT.md §"Wire protocol"):
 * additions bump `kProtocolVersion`; a reader accepts frames with
 * version ≤ its own and rejects newer ones with `kProtocol`, so an
 * old server answers a too-new client with a typed error response
 * instead of misparsing bytes.
 */
#ifndef SHREDDER_NET_PROTOCOL_H
#define SHREDDER_NET_PROTOCOL_H

#include <cstdint>
#include <string>

#include "src/net/socket.h"
#include "src/runtime/serving_error.h"
#include "src/tensor/quantize.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace net {

/** 'SHRQ' little-endian: an activation request frame. */
constexpr std::uint32_t kRequestMagic = 0x51524853;
/** 'SHRP' little-endian: a response frame. */
constexpr std::uint32_t kResponseMagic = 0x50524853;
/** Current protocol version (readers accept ≤ this). */
constexpr std::uint32_t kProtocolVersion = 2;
/**
 * Payload ceiling. A length prefix above this is treated as
 * corruption before any allocation happens — a malformed frame must
 * not be able to demand arbitrary memory.
 */
constexpr std::uint32_t kMaxFramePayload = 64u << 20;
/** Endpoint-name length ceiling inside a request payload. */
constexpr std::uint32_t kMaxEndpointName = 256;

/**
 * Stable on-wire status codes. These are the protocol's public enum —
 * explicitly numbered and append-only, decoupled from the in-process
 * `ServingErrorCode` ordering so recompiling the server can never
 * silently renumber what deployed edge clients see.
 */
enum class WireStatus : std::uint32_t {
    kOk = 0,
    kUnknownEndpoint = 1,  ///< No endpoint of that name is registered.
    kInvalidShape = 2,     ///< Activation violates the shape contract.
    kShutdown = 3,         ///< The engine stopped accepting requests.
    kProtocolError = 4,    ///< The request frame itself was malformed.
    kInternal = 5,         ///< Any other server-side failure.
    kRateLimited = 6,      ///< Token-bucket backpressure: retry later.
    kAdmissionReject = 7,  ///< In-flight cap backpressure: retry later.
};

/**
 * Highest status value this build understands. A response carrying a
 * larger status is treated as protocol corruption — which also means
 * pre-admission-control builds answer the new backpressure codes with
 * a typed `kProtocol` close instead of misreading them, per the
 * versioning rule above.
 */
constexpr std::uint32_t kMaxWireStatus =
    static_cast<std::uint32_t>(WireStatus::kAdmissionReject);

/** Stable identifier string for a wire status (for messages/logs). */
const char* to_string(WireStatus status);

/** Map an in-process serving failure onto its wire status. */
WireStatus wire_status(runtime::ServingErrorCode code);

/** Map a received non-kOk wire status back to a typed error code. */
runtime::ServingErrorCode serving_code(WireStatus status);

/** One decoded request frame. */
struct Request
{
    std::uint64_t request_id = 0;  ///< Keys the noise draw (see policies).
    std::string endpoint;          ///< Target endpoint name.
    /** Per-sample activation at the cut (fp32 requests). */
    Tensor activation;
    /** Quantized activation; meaningful only when `is_quantized`. */
    QuantizedTensor quantized;
    /**
     * True when the activation crossed the wire quantized (`quantized`
     * holds it and the frame stamped protocol v2); false for the fp32
     * path (`activation` holds it, protocol v1 framing).
     */
    bool is_quantized = false;
};

/** One decoded response frame. */
struct Response
{
    std::uint64_t request_id = 0;     ///< Echo of the request's id.
    WireStatus status = WireStatus::kOk;
    Tensor output;        ///< Logits; valid only when status == kOk.
    std::string message;  ///< Error context; empty when status == kOk.
};

/** Encode a complete request frame (envelope + payload). */
std::string encode_request(const Request& request);

/** Encode a complete response frame (envelope + payload). */
std::string encode_response(const Response& response);

/**
 * Parse a request payload (the bytes after the 12-byte envelope).
 * @throws runtime::ServingError `kProtocol` on any malformation,
 *         including trailing bytes after the activation tensor.
 */
Request decode_request_payload(const std::string& payload);

/** Response-side counterpart of `decode_request_payload`. */
Response decode_response_payload(const std::string& payload);

/**
 * Read one frame envelope + payload off `socket`.
 *
 * @param socket         The connected stream.
 * @param expected_magic `kRequestMagic` or `kResponseMagic` — which
 *                       frame kind this side of the conversation
 *                       accepts.
 * @param payload        Out: the payload bytes (envelope stripped).
 * @return true when a frame was read; false on a CLEAN close — the
 *         peer shut the stream down exactly between frames.
 * @throws runtime::ServingError `kProtocol` for a malformed envelope
 *         (wrong magic, future version, oversize payload) and
 *         `kNetwork` for a disconnect mid-frame.
 */
bool read_frame(Socket& socket, std::uint32_t expected_magic,
                std::string* payload);

}  // namespace net
}  // namespace shredder

#endif  // SHREDDER_NET_PROTOCOL_H
