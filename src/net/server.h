/**
 * @file
 * The network front door: a TCP server speaking SHRQ/SHRP in front of
 * a `ServingEngine`.
 *
 * This materializes the paper's deployment split (§1, §2.6): the edge
 * half runs on a device, the cloud half behind this listener. Each
 * accepted connection gets a reader thread (decode frame → submit to
 * the engine) and a writer thread (await the engine future → encode
 * response), so one connection can keep many requests in flight — the
 * pipelining an open-loop edge client needs — while responses still
 * carry the request id they answer.
 *
 * Trust boundary: every frame is parsed through the checked `wire`
 * readers (src/net/protocol.h). A malformed frame yields a best-effort
 * typed `kProtocolError` response and a connection close; a request
 * the engine rejects (unknown endpoint, bad shape, shutdown) yields a
 * typed error response and the connection KEEPS serving — one bad
 * client request must not cost the client its link, and one bad
 * client must never cost other clients theirs. The server never
 * crashes on network input.
 *
 * The same listener also answers plain HTTP `GET /metrics` with a
 * Prometheus text scrape (src/net/metrics.h): the reader peeks the
 * connection's first bytes and demuxes — `G` starts an HTTP exchange
 * (one response, then close), anything else is parsed as SHRQ. No
 * second port, so the scrape observes exactly the serving process.
 *
 * Lifecycle: the constructor binds and starts accepting; `stop()`
 * (idempotent, also run by the destructor) closes the listener,
 * shuts down every connection, and joins all threads. The engine is
 * borrowed and must outlive the server.
 */
#ifndef SHREDDER_NET_SERVER_H
#define SHREDDER_NET_SERVER_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/runtime/serving_engine.h"

namespace shredder {
namespace net {

/** Listener knobs. */
struct ServerConfig
{
    /** Numeric IPv4 address to bind. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read back via `port()`). */
    std::uint16_t port = 0;
    /**
     * Frames a connection's reader may have in flight before it stops
     * reading — bounds the per-connection memory an aggressive client
     * can pin while responses drain.
     */
    std::int64_t max_inflight_per_connection = 256;
};

/** Wire-level counters (engine-level stats live in `ServingEngine`). */
struct ServerNetStats
{
    std::int64_t connections_accepted = 0;
    std::int64_t connections_active = 0;
    std::int64_t frames_served = 0;    ///< Responses written, any status.
    std::int64_t protocol_errors = 0;  ///< Malformed frames survived.
    std::int64_t http_requests = 0;    ///< HTTP GETs demuxed (any path).
    std::int64_t metrics_requests = 0; ///< GET /metrics scrapes served.
};

/** See file comment. */
class Server
{
  public:
    /**
     * Bind `config.host:config.port` and start accepting.
     * @throws runtime::ServingError `kNetwork` when the bind fails.
     */
    Server(runtime::ServingEngine& engine, const ServerConfig& config = {});

    /** Stops and joins everything. */
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /** The bound TCP port (the actual one when 0 was configured). */
    std::uint16_t port() const { return listener_.port(); }

    /** Snapshot of the wire-level counters. */
    ServerNetStats stats() const;

    /**
     * Stop accepting, close every connection, join all threads.
     * Idempotent; in-flight engine futures are still answered before
     * their connections close.
     */
    void stop();

  private:
    struct Connection;

    /** Accept loop (its own thread). */
    void accept_loop();

    /** Per-connection frame→engine loop (reader thread). */
    void reader_loop(Connection* connection);

    /**
     * Serve one HTTP GET on a connection whose first peeked byte said
     * HTTP instead of SHRQ (`GET /metrics` → Prometheus scrape body,
     * anything else → 404), then close. Runs on the reader thread;
     * the writer never has pending entries on an HTTP connection, so
     * the reader is the connection's only sender here.
     */
    void serve_http(Connection* connection);

    /** Per-connection future→frame loop (writer thread). */
    void writer_loop(Connection* connection);

    /** Drop finished connections from the registry (joins them). */
    void reap_connections();

    runtime::ServingEngine& engine_;
    ServerConfig config_;
    Listener listener_;

    mutable std::mutex mutex_;  ///< Guards connections_ and stats_.
    std::list<std::unique_ptr<Connection>> connections_;
    ServerNetStats stats_;
    bool stopping_ = false;

    std::thread acceptor_;
};

}  // namespace net
}  // namespace shredder

#endif  // SHREDDER_NET_SERVER_H
