/**
 * @file
 * Implementation of the SHRQ/SHRP frame codec (see header).
 */
#include "src/net/protocol.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace net {

namespace {

using runtime::ServingError;
using runtime::ServingErrorCode;

[[noreturn]] void
protocol_error(const std::string& what)
{
    throw ServingError(ServingErrorCode::kProtocol, what);
}

/**
 * Run a payload parser with the trust-boundary disciplines engaged:
 * `SerializeError` from the wire readers and `FatalError` from
 * shape/tensor validation both become typed `kProtocol` errors, and
 * the payload must be consumed exactly (a frame with trailing bytes
 * is lying about its length).
 */
template <typename F>
auto
parse_payload(const std::string& payload, const char* kind, F&& parse)
{
    std::istringstream is(payload);
    // Guard the whole parse: untrusted bytes may reach SHREDDER_REQUIRE
    // checks deep inside Tensor/Shape construction — those must fail
    // the frame, never the process.
    ScopedFatalThrow guard;
    try {
        auto parsed = parse(is);
        const auto consumed = is.tellg();
        if (consumed < 0 ||
            static_cast<std::size_t>(consumed) != payload.size()) {
            protocol_error(std::string(kind) +
                           " payload has trailing bytes");
        }
        return parsed;
    } catch (const SerializeError& e) {
        protocol_error(std::string("malformed ") + kind + " payload: " +
                       e.what());
    } catch (const FatalError& e) {
        protocol_error(std::string("malformed ") + kind + " payload: " +
                       e.what());
    }
}

}  // namespace

const char*
to_string(WireStatus status)
{
    switch (status) {
      case WireStatus::kOk: return "kOk";
      case WireStatus::kUnknownEndpoint: return "kUnknownEndpoint";
      case WireStatus::kInvalidShape: return "kInvalidShape";
      case WireStatus::kShutdown: return "kShutdown";
      case WireStatus::kProtocolError: return "kProtocolError";
      case WireStatus::kInternal: return "kInternal";
      case WireStatus::kRateLimited: return "kRateLimited";
      case WireStatus::kAdmissionReject: return "kAdmissionReject";
    }
    return "kUnknown";
}

WireStatus
wire_status(ServingErrorCode code)
{
    switch (code) {
      case ServingErrorCode::kUnknownEndpoint:
        return WireStatus::kUnknownEndpoint;
      case ServingErrorCode::kInvalidShape:
        return WireStatus::kInvalidShape;
      case ServingErrorCode::kShutdown: return WireStatus::kShutdown;
      case ServingErrorCode::kProtocol:
        return WireStatus::kProtocolError;
      case ServingErrorCode::kRateLimited:
        return WireStatus::kRateLimited;
      case ServingErrorCode::kAdmissionReject:
        return WireStatus::kAdmissionReject;
      default: return WireStatus::kInternal;
    }
}

ServingErrorCode
serving_code(WireStatus status)
{
    switch (status) {
      case WireStatus::kUnknownEndpoint:
        return ServingErrorCode::kUnknownEndpoint;
      case WireStatus::kInvalidShape:
        return ServingErrorCode::kInvalidShape;
      case WireStatus::kShutdown: return ServingErrorCode::kShutdown;
      case WireStatus::kProtocolError:
        return ServingErrorCode::kProtocol;
      case WireStatus::kRateLimited:
        return ServingErrorCode::kRateLimited;
      case WireStatus::kAdmissionReject:
        return ServingErrorCode::kAdmissionReject;
      case WireStatus::kOk:
      case WireStatus::kInternal: break;
    }
    return ServingErrorCode::kNetwork;
}

namespace {

/**
 * Wrap a finished payload in the 12-byte envelope. The version is the
 * lowest one that can carry the payload (see the header's versioning
 * note): fp32 requests and every response stamp 1, quantized requests
 * stamp 2.
 */
std::string
envelope(std::uint32_t magic, std::uint32_t version,
         const std::string& payload)
{
    SHREDDER_CHECK(payload.size() <= kMaxFramePayload,
                   "outgoing frame payload of ", payload.size(),
                   " bytes exceeds kMaxFramePayload");
    std::ostringstream os;
    wire::write_u32(os, magic);
    wire::write_u32(os, version);
    wire::write_u32(os, static_cast<std::uint32_t>(payload.size()));
    std::string framed = os.str();
    framed += payload;
    return framed;
}

}  // namespace

std::string
encode_request(const Request& request)
{
    SHREDDER_REQUIRE(!request.endpoint.empty() &&
                         request.endpoint.size() <= kMaxEndpointName,
                     "endpoint name must be 1-", kMaxEndpointName,
                     " bytes, got ", request.endpoint.size());
    std::ostringstream os;
    wire::write_u64(os, request.request_id);
    wire::write_string(os, request.endpoint);
    if (request.is_quantized) {
        write_tensor_wire(os, request.quantized);
    } else {
        write_tensor(os, request.activation);
    }
    const bool v2 = request.is_quantized &&
                    request.quantized.dtype != WireDtype::kF32;
    return envelope(kRequestMagic, v2 ? 2u : 1u, os.str());
}

std::string
encode_response(const Response& response)
{
    std::ostringstream os;
    wire::write_u64(os, response.request_id);
    wire::write_u32(os, static_cast<std::uint32_t>(response.status));
    if (response.status == WireStatus::kOk) {
        write_tensor(os, response.output);
    } else {
        wire::write_string(os, response.message);
    }
    return envelope(kResponseMagic, 1u, os.str());
}

Request
decode_request_payload(const std::string& payload)
{
    return parse_payload(payload, "SHRQ", [](std::istream& is) {
        Request request;
        request.request_id = wire::read_u64(is);
        request.endpoint = wire::read_string(is, kMaxEndpointName);
        if (request.endpoint.empty()) {
            protocol_error("SHRQ endpoint name is empty");
        }
        QuantizedTensor q = read_tensor_wire_checked(is);
        if (q.dtype == WireDtype::kF32) {
            // v1 framing: hand callers the plain tensor they expect.
            request.activation = dequantize(q);
        } else {
            request.quantized = std::move(q);
            request.is_quantized = true;
        }
        return request;
    });
}

Response
decode_response_payload(const std::string& payload)
{
    return parse_payload(payload, "SHRP", [](std::istream& is) {
        Response response;
        response.request_id = wire::read_u64(is);
        const std::uint32_t status = wire::read_u32(is);
        if (status > kMaxWireStatus) {
            protocol_error("SHRP status " + std::to_string(status) +
                           " is not a known WireStatus");
        }
        response.status = static_cast<WireStatus>(status);
        if (response.status == WireStatus::kOk) {
            response.output = read_tensor_checked(is);
        } else {
            response.message = wire::read_string(is, 4096);
        }
        return response;
    });
}

bool
read_frame(Socket& socket, std::uint32_t expected_magic,
           std::string* payload)
{
    // The envelope is read with raw socket calls (a stream adapter
    // would hide WHERE the bytes stopped); everything after it goes
    // through the checked wire readers.
    unsigned char header[12];
    const std::size_t first = socket.recv_some(header, sizeof(header));
    if (first == 0) {
        return false;  // clean close between frames
    }
    if (first < sizeof(header)) {
        socket.recv_all(header + first, sizeof(header) - first);
    }

    const auto read_le32 = [&header](int at) {
        return static_cast<std::uint32_t>(header[at]) |
               static_cast<std::uint32_t>(header[at + 1]) << 8 |
               static_cast<std::uint32_t>(header[at + 2]) << 16 |
               static_cast<std::uint32_t>(header[at + 3]) << 24;
    };
    const std::uint32_t magic = read_le32(0);
    const std::uint32_t version = read_le32(4);
    const std::uint32_t length = read_le32(8);

    if (magic != expected_magic) {
        protocol_error("bad frame magic 0x" + [magic] {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%08x", magic);
            return std::string(buf);
        }());
    }
    if (version > kProtocolVersion) {
        protocol_error("frame version " + std::to_string(version) +
                       " is newer than this build's " +
                       std::to_string(kProtocolVersion));
    }
    if (length > kMaxFramePayload) {
        protocol_error("frame payload length " + std::to_string(length) +
                       " exceeds the " +
                       std::to_string(kMaxFramePayload) + "-byte limit");
    }

    payload->resize(length);
    if (length > 0) {
        socket.recv_all(&(*payload)[0], length);
    }
    return true;
}

}  // namespace net
}  // namespace shredder
