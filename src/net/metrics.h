/**
 * @file
 * Prometheus text exposition (format 0.0.4) for a serving engine.
 *
 * `render_metrics` snapshots every observable surface the engine
 * exposes — per-endpoint `ServerStats` (counters plus the queue-wait
 * histogram), per-shard layout, the weight-registry counters, and the
 * front door's own wire counters — and renders them as one scrape
 * body. Rendering reads the same `stats()` snapshots tooling already
 * uses; a scrape takes the engine's stats locks briefly and never
 * touches the serving path, so scraping under load cannot perturb
 * results (pinned by tests/test_metrics.cc).
 *
 * Exposition rules followed (what the strict checker in the tests
 * verifies): one `# HELP`/`# TYPE` pair per family before its
 * samples, histogram buckets cumulative with an exact `le="+Inf"`
 * count equal to `_count`, label values escaped (`\\`, `\"`, `\n`),
 * and a trailing newline on the last line.
 */
#ifndef SHREDDER_NET_METRICS_H
#define SHREDDER_NET_METRICS_H

#include <string>

#include "src/runtime/serving_engine.h"

namespace shredder {
namespace net {

struct ServerNetStats;

/**
 * Render one `/metrics` scrape body for `engine`, including the wire
 * counters of the server doing the scrape. Thread-safe (uses only the
 * engine's locked snapshot accessors).
 */
std::string render_metrics(const runtime::ServingEngine& engine,
                           const ServerNetStats& net);

/**
 * Escape a label value per the exposition format: backslash, double
 * quote, and newline become `\\`, `\"`, `\n`.
 */
std::string escape_label_value(const std::string& value);

}  // namespace net
}  // namespace shredder

#endif  // SHREDDER_NET_METRICS_H
