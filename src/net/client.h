/**
 * @file
 * Blocking SHRQ/SHRP client — the edge device's side of the wire.
 *
 * A deployed edge runs the model's edge half locally, noises (or
 * defers noising of) the cut activation, and ships it to the cloud
 * front door (net::Server). This client speaks that protocol:
 *
 *   net::Client client("203.0.113.7", 9090);
 *   Tensor logits = client.infer("lenet", activation, request_id);
 *
 * `infer` is strictly request/response. For open-loop load (many
 * requests in flight on one connection) use the pipelined pair
 * `send` / `recv`: the server answers in submission order and every
 * response carries its request id, so the caller can match them up.
 *
 * Error discipline mirrors the server's: a non-kOk response status
 * maps back to a typed `runtime::ServingError` (`kUnknownEndpoint`,
 * `kInvalidShape`, `kShutdown`, `kProtocol`, `kNetwork`) thrown at the
 * caller; a malformed *response* frame — the server is across a trust
 * boundary from the edge, too — throws `kProtocol`.
 */
#ifndef SHREDDER_NET_CLIENT_H
#define SHREDDER_NET_CLIENT_H

#include <cstdint>
#include <string>

#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace net {

/** See file comment. */
class Client
{
  public:
    /**
     * Connect to a `net::Server` at `host:port`.
     * @throws runtime::ServingError `kNetwork` when the connection
     *         cannot be established.
     */
    Client(const std::string& host, std::uint16_t port);

    /**
     * One blocking round trip: ship `activation` to `endpoint` under
     * `request_id` (which keys the server-side noise draw), wait for
     * the response, return the logits.
     * @throws runtime::ServingError with the typed code the server
     *         reported (`serving_code` of the wire status), or
     *         `kProtocol`/`kNetwork` for a broken response stream.
     */
    Tensor infer(const std::string& endpoint, const Tensor& activation,
                 std::uint64_t request_id);

    /**
     * As `infer`, but the activation crosses the wire quantized to
     * `dtype` (int8 ships 4× fewer payload bytes than fp32). The
     * quantize-after-noise distortion this adds is the mechanism
     * `runtime::QuantizePolicy` reproduces for measurement. `dtype`
     * kF32 is the plain path.
     */
    Tensor infer(const std::string& endpoint, const Tensor& activation,
                 std::uint64_t request_id, WireDtype dtype);

    /**
     * Pipelined send: fire one request frame without waiting. Pair
     * with `recv`; keep the number in flight below the server's
     * per-connection bound (ServerConfig::max_inflight_per_connection).
     */
    void send(const std::string& endpoint, const Tensor& activation,
              std::uint64_t request_id);

    /** As `send`, quantizing the activation to `dtype` first. */
    void send(const std::string& endpoint, const Tensor& activation,
              std::uint64_t request_id, WireDtype dtype);

    /**
     * Receive the next response frame (any status — the caller
     * decides whether a typed failure ends the run).
     * @throws runtime::ServingError `kProtocol` for a malformed frame,
     *         `kNetwork` if the server closed the stream instead of
     *         answering.
     */
    Response recv();

    /** Close the connection (idempotent; also run by the destructor). */
    void close();

  private:
    Socket socket_;
};

}  // namespace net
}  // namespace shredder

#endif  // SHREDDER_NET_CLIENT_H
