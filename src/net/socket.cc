/**
 * @file
 * POSIX implementation of the net socket wrappers (see header).
 */
#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace shredder {
namespace net {

namespace {

using runtime::ServingError;
using runtime::ServingErrorCode;

[[noreturn]] void
throw_errno(const std::string& what)
{
    throw ServingError(ServingErrorCode::kNetwork,
                       what + ": " + std::strerror(errno));
}

/** Disable Nagle: frames are latency-sensitive request/response units. */
void
set_no_delay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket
Socket::connect(const std::string& host, std::uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                 &result);
    if (rc != 0) {
        throw ServingError(ServingErrorCode::kNetwork,
                           "cannot resolve '" + host +
                               "': " + ::gai_strerror(rc));
    }

    int fd = -1;
    int saved_errno = 0;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            saved_errno = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            break;
        }
        saved_errno = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(result);
    if (fd < 0) {
        errno = saved_errno;
        throw_errno("cannot connect to " + host + ":" + service);
    }
    set_no_delay(fd);
    return Socket(fd);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Socket&
Socket::operator=(Socket&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::send_all(const void* data, std::size_t len)
{
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
        // MSG_NOSIGNAL: a peer that already closed must fail the call,
        // not SIGPIPE the whole serving process.
        const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("send failed");
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

std::size_t
Socket::recv_some(void* data, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd_, data, len, 0);
        if (n >= 0) {
            return static_cast<std::size_t>(n);
        }
        if (errno == EINTR) {
            continue;
        }
        throw_errno("recv failed");
    }
}

std::size_t
Socket::peek(void* data, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd_, data, len, MSG_PEEK);
        if (n >= 0) {
            return static_cast<std::size_t>(n);
        }
        if (errno == EINTR) {
            continue;
        }
        throw_errno("peek failed");
    }
}

void
Socket::recv_all(void* data, std::size_t len)
{
    char* p = static_cast<char*>(data);
    while (len > 0) {
        const std::size_t n = recv_some(p, len);
        if (n == 0) {
            throw ServingError(ServingErrorCode::kNetwork,
                               "peer disconnected mid-transfer (" +
                                   std::to_string(len) +
                                   " bytes still expected)");
        }
        p += n;
        len -= n;
    }
}

void
Socket::shutdown_send()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_WR);
    }
}

void
Socket::shutdown_both()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
    }
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Listener::Listener(const std::string& host, std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        throw_errno("cannot create listening socket");
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw ServingError(ServingErrorCode::kNetwork,
                           "listener host must be a numeric IPv4 "
                           "address, got '" + host + "'");
    }
    // shredder-lint: allow(untrusted-cast) — POSIX sockaddr aliasing, no byte parsing
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const std::string what = "cannot bind " + host + ":" +
                                 std::to_string(port);
        ::close(fd_);
        fd_ = -1;
        throw_errno(what);
    }
    if (::listen(fd_, SOMAXCONN) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw_errno("listen failed");
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    // shredder-lint: allow(untrusted-cast) — POSIX sockaddr aliasing, no byte parsing
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw_errno("getsockname failed");
    }
    port_ = ntohs(bound.sin_port);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw_errno("cannot create listener wakeup pipe");
    }
    wake_read_ = pipe_fds[0];
    wake_write_ = pipe_fds[1];
}

Listener::~Listener()
{
    close();
    // The descriptors are released only here — close() leaves them
    // open (merely shut down) so a concurrent accept() never polls a
    // recycled fd number.
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (wake_read_ >= 0) {
        ::close(wake_read_);
        wake_read_ = -1;
    }
    if (wake_write_ >= 0) {
        ::close(wake_write_);
        wake_write_ = -1;
    }
}

Socket
Listener::accept()
{
    for (;;) {
        if (closing_.load(std::memory_order_acquire)) {
            return Socket();  // closed before (or during) the call
        }
        pollfd fds[2];
        fds[0].fd = fd_;
        fds[0].events = POLLIN;
        fds[1].fd = wake_read_;
        fds[1].events = POLLIN;
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            throw_errno("poll failed");
        }
        if (fds[1].revents != 0 ||
            closing_.load(std::memory_order_acquire)) {
            return Socket();  // close() woke us: shutdown, not error
        }
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR || errno == ECONNABORTED) {
                continue;
            }
            if (errno == EINVAL) {
                return Socket();  // raced close(); clean shutdown
            }
            throw_errno("accept failed");
        }
        set_no_delay(client);
        return Socket(client);
    }
}

void
Listener::close()
{
    if (closing_.exchange(true, std::memory_order_acq_rel)) {
        return;  // idempotent
    }
    if (fd_ >= 0) {
        // Unblocks a racing accept() with EINVAL on Linux; the fd
        // itself stays allocated until the destructor runs.
        ::shutdown(fd_, SHUT_RDWR);
    }
    if (wake_write_ >= 0) {
        const char byte = 1;
        // Best-effort: a full pipe already guarantees a pending wakeup.
        (void)!::write(wake_write_, &byte, 1);
    }
}

}  // namespace net
}  // namespace shredder
