/**
 * @file
 * Implementation of the blocking SHRQ/SHRP client (see header).
 */
#include "src/net/client.h"

namespace shredder {
namespace net {

using runtime::ServingError;
using runtime::ServingErrorCode;

Client::Client(const std::string& host, std::uint16_t port)
    : socket_(Socket::connect(host, port))
{
}

void
Client::send(const std::string& endpoint, const Tensor& activation,
             std::uint64_t request_id)
{
    Request request;
    request.request_id = request_id;
    request.endpoint = endpoint;
    request.activation = activation;
    const std::string frame = encode_request(request);
    socket_.send_all(frame.data(), frame.size());
}

void
Client::send(const std::string& endpoint, const Tensor& activation,
             std::uint64_t request_id, WireDtype dtype)
{
    if (dtype == WireDtype::kF32) {
        send(endpoint, activation, request_id);
        return;
    }
    Request request;
    request.request_id = request_id;
    request.endpoint = endpoint;
    request.quantized = quantize(activation, dtype);
    request.is_quantized = true;
    const std::string frame = encode_request(request);
    socket_.send_all(frame.data(), frame.size());
}

Response
Client::recv()
{
    std::string payload;
    if (!read_frame(socket_, kResponseMagic, &payload)) {
        throw ServingError(ServingErrorCode::kNetwork,
                           "server closed the connection while a "
                           "response was expected");
    }
    return decode_response_payload(payload);
}

Tensor
Client::infer(const std::string& endpoint, const Tensor& activation,
              std::uint64_t request_id)
{
    return infer(endpoint, activation, request_id, WireDtype::kF32);
}

Tensor
Client::infer(const std::string& endpoint, const Tensor& activation,
              std::uint64_t request_id, WireDtype dtype)
{
    send(endpoint, activation, request_id, dtype);
    Response response = recv();
    if (response.request_id != request_id) {
        throw ServingError(ServingErrorCode::kProtocol,
                           "response answers request " +
                               std::to_string(response.request_id) +
                               ", expected " +
                               std::to_string(request_id));
    }
    if (response.status != WireStatus::kOk) {
        throw ServingError(serving_code(response.status),
                           "server replied " +
                               std::string(to_string(response.status)) +
                               ": " + response.message);
    }
    return std::move(response.output);
}

void
Client::close()
{
    socket_.close();
}

}  // namespace net
}  // namespace shredder
