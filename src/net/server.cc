/**
 * @file
 * Implementation of the SHRQ/SHRP network server (see header).
 */
#include "src/net/server.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <sstream>
#include <utility>

#include "src/net/metrics.h"
#include "src/net/protocol.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace net {

using runtime::ServingError;
using runtime::ServingErrorCode;

/**
 * One accepted client link. The reader thread decodes frames and
 * submits them; the writer thread drains `pending` in submission
 * order (responses carry ids, so FIFO write order is a convenience,
 * not a contract) and is the connection's only sender.
 */
struct Server::Connection
{
    explicit Connection(Socket s) : socket(std::move(s)) {}

    Socket socket;
    std::thread reader;
    std::thread writer;

    std::mutex mutex;  ///< Guards pending + flags below.
    std::condition_variable cv;
    /** In-flight work: an engine future, or an already-typed reply. */
    struct Pending
    {
        bool is_ready = false;      ///< True: `ready` is the reply.
        std::future<Tensor> future; ///< Engine result (when !is_ready).
        Response ready;             ///< Pre-built (error) response.
    };
    std::deque<Pending> pending;
    bool reader_done = false;  ///< No further pending entries will come.
    bool closing = false;      ///< stop() wants both loops gone.

    std::atomic<bool> reader_exited{false};
    std::atomic<bool> writer_exited{false};

    /** True once both loops returned (safe to join + destroy). */
    bool finished() const
    {
        return reader_exited.load(std::memory_order_acquire) &&
               writer_exited.load(std::memory_order_acquire);
    }
};

Server::Server(runtime::ServingEngine& engine, const ServerConfig& config)
    : engine_(engine), config_(config),
      listener_(config.host, config.port)
{
    SHREDDER_REQUIRE(config_.max_inflight_per_connection >= 1,
                     "max_inflight_per_connection must be >= 1, got ",
                     config_.max_inflight_per_connection);
    acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

ServerNetStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
Server::accept_loop()
{
    for (;;) {
        Socket client = listener_.accept();
        if (!client.valid()) {
            return;  // listener closed: shutdown
        }
        auto connection = std::make_unique<Connection>(std::move(client));
        Connection* raw = connection.get();
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            return;  // raced stop(); drop the socket on the floor
        }
        reap_connections();
        ++stats_.connections_accepted;
        ++stats_.connections_active;
        raw->reader = std::thread([this, raw] { reader_loop(raw); });
        raw->writer = std::thread([this, raw] { writer_loop(raw); });
        connections_.push_back(std::move(connection));
    }
}

void
Server::reap_connections()
{
    // Caller holds mutex_. Finished connections' threads have both
    // returned, so the joins below cannot block the accept loop.
    for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished()) {
            (*it)->reader.join();
            (*it)->writer.join();
            it = connections_.erase(it);
            --stats_.connections_active;
        } else {
            ++it;
        }
    }
}

void
Server::reader_loop(Connection* connection)
{
    const auto finish = [connection](bool note_protocol_error,
                                     Response error_response) {
        std::unique_lock<std::mutex> lock(connection->mutex);
        if (note_protocol_error) {
            Connection::Pending entry;
            entry.is_ready = true;
            entry.ready = std::move(error_response);
            connection->pending.push_back(std::move(entry));
        }
        connection->reader_done = true;
        lock.unlock();
        connection->cv.notify_all();
        connection->reader_exited.store(true, std::memory_order_release);
    };

    // Protocol demux: peek the first byte without consuming it. An
    // HTTP scrape starts "GET ", a SHRQ frame starts with its magic —
    // they differ in byte 0, so one peeked byte decides. The bytes
    // stay in the stream for whichever parser wins.
    try {
        char head = 0;
        const std::size_t peeked = connection->socket.peek(&head, 1);
        if (peeked == 0) {
            finish(false, Response{});
            return;  // clean close before any byte
        }
        if (head == 'G') {
            serve_http(connection);
            finish(false, Response{});
            return;  // HTTP is one exchange; the connection is done
        }
    } catch (const ServingError&) {
        finish(false, Response{});
        return;  // socket died before the first byte
    }

    for (;;) {
        std::string payload;
        try {
            if (!read_frame(connection->socket, kRequestMagic,
                            &payload)) {
                finish(false, Response{});
                return;  // clean close between frames
            }
        } catch (const ServingError& e) {
            // Bad envelope or mid-frame disconnect. The stream
            // position is unknowable now, so the connection ends —
            // but with a best-effort typed response first when the
            // link still works (kProtocol), and never a crash.
            const bool answerable =
                e.code() == ServingErrorCode::kProtocol;
            if (answerable) {
                std::lock_guard<std::mutex> stats_lock(mutex_);
                ++stats_.protocol_errors;
            }
            Response response;
            response.status = WireStatus::kProtocolError;
            response.message = e.what();
            finish(answerable, std::move(response));
            return;
        }

        Request request;
        try {
            request = decode_request_payload(payload);
        } catch (const ServingError& e) {
            {
                std::lock_guard<std::mutex> stats_lock(mutex_);
                ++stats_.protocol_errors;
            }
            Response response;
            response.status = WireStatus::kProtocolError;
            response.message = e.what();
            finish(true, std::move(response));
            return;
        }

        Connection::Pending entry;
        // Quantized activations stay quantized into the engine: the
        // endpoint either consumes them directly (int8 GEMM) or
        // dequantizes on a worker, not on the reader thread.
        entry.future =
            request.is_quantized
                ? engine_.submit_quantized(request.endpoint,
                                           std::move(request.quantized),
                                           request.request_id)
                : engine_.submit(request.endpoint,
                                 std::move(request.activation),
                                 request.request_id);
        entry.ready.request_id = request.request_id;

        std::unique_lock<std::mutex> lock(connection->mutex);
        connection->cv.wait(lock, [this, connection] {
            return static_cast<std::int64_t>(
                       connection->pending.size()) <
                       config_.max_inflight_per_connection ||
                   connection->closing;
        });
        if (connection->closing) {
            connection->reader_done = true;
            lock.unlock();
            connection->cv.notify_all();
            connection->reader_exited.store(true,
                                            std::memory_order_release);
            return;
        }
        connection->pending.push_back(std::move(entry));
        lock.unlock();
        connection->cv.notify_all();
    }
}

void
Server::serve_http(Connection* connection)
{
    // Bounded header read: the exchange ends at CRLFCRLF. 8 KiB is
    // far beyond any scraper's GET; past it the request is hostile
    // and the connection simply closes.
    constexpr std::size_t kMaxHeader = 8192;
    std::string raw;
    bool complete = false;
    try {
        char chunk[512];
        while (raw.size() < kMaxHeader) {
            const std::size_t n =
                connection->socket.recv_some(chunk, sizeof chunk);
            if (n == 0) {
                return;  // client went away mid-request
            }
            raw.append(chunk, n);
            if (raw.find("\r\n\r\n") != std::string::npos) {
                complete = true;
                break;
            }
        }
    } catch (const ServingError&) {
        return;
    }
    if (!complete) {
        return;
    }

    // Request line: METHOD SP TARGET SP VERSION.
    std::istringstream line(raw.substr(0, raw.find("\r\n")));
    std::string method;
    std::string target;
    line >> method >> target;

    std::string status_line;
    std::string content_type;
    std::string body;
    if (method == "GET" &&
        (target == "/metrics" || target.rfind("/metrics?", 0) == 0)) {
        ServerNetStats net;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.http_requests;
            ++stats_.metrics_requests;
            net = stats_;
        }
        status_line = "HTTP/1.0 200 OK";
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = render_metrics(engine_, net);
    } else {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.http_requests;
        status_line = "HTTP/1.0 404 Not Found";
        content_type = "text/plain; charset=utf-8";
        body = "not found\n";
    }

    std::ostringstream response;
    response << status_line << "\r\n"
             << "Content-Type: " << content_type << "\r\n"
             << "Content-Length: " << body.size() << "\r\n"
             << "Connection: close\r\n\r\n"
             << body;
    const std::string out = response.str();
    try {
        connection->socket.send_all(out.data(), out.size());
    } catch (const ServingError&) {
        // The scraper vanished mid-response; nothing left to do.
    }
}

void
Server::writer_loop(Connection* connection)
{
    bool link_alive = true;
    for (;;) {
        std::unique_lock<std::mutex> lock(connection->mutex);
        connection->cv.wait(lock, [connection] {
            return !connection->pending.empty() ||
                   connection->reader_done;
        });
        if (connection->pending.empty()) {
            break;  // reader_done and everything flushed
        }
        Connection::Pending entry = std::move(connection->pending.front());
        connection->pending.pop_front();
        lock.unlock();
        connection->cv.notify_all();  // reader may be at its bound

        Response response;
        if (entry.is_ready) {
            response = std::move(entry.ready);
        } else {
            response.request_id = entry.ready.request_id;
            try {
                response.output = entry.future.get();
                response.status = WireStatus::kOk;
            } catch (const ServingError& e) {
                response.status = wire_status(e.code());
                response.message = e.what();
            } catch (const std::exception& e) {
                response.status = WireStatus::kInternal;
                response.message = e.what();
            }
        }

        if (!link_alive) {
            continue;  // keep consuming futures; nowhere to send
        }
        try {
            const std::string frame = encode_response(response);
            connection->socket.send_all(frame.data(), frame.size());
            std::lock_guard<std::mutex> stats_lock(mutex_);
            ++stats_.frames_served;
        } catch (const ServingError&) {
            // The client went away. Stop sending but keep draining
            // the queue so already-submitted work is consumed.
            link_alive = false;
        }
    }
    // All responses flushed (or the link died): signal EOF so a
    // half-closed client's read loop terminates cleanly.
    connection->socket.shutdown_both();
    connection->writer_exited.store(true, std::memory_order_release);
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            return;
        }
        stopping_ = true;
    }
    listener_.close();
    if (acceptor_.joinable()) {
        acceptor_.join();
    }

    // The acceptor is gone, so connections_ is stable now.
    std::list<std::unique_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections.swap(connections_);
        stats_.connections_active = 0;
    }
    for (auto& connection : connections) {
        {
            std::lock_guard<std::mutex> lock(connection->mutex);
            connection->closing = true;
        }
        // Readers blocked in recv observe a clean close; loops at the
        // in-flight bound observe `closing`.
        connection->socket.shutdown_both();
        connection->cv.notify_all();
    }
    for (auto& connection : connections) {
        if (connection->reader.joinable()) {
            connection->reader.join();
        }
        if (connection->writer.joinable()) {
            connection->writer.join();
        }
    }
}

}  // namespace net
}  // namespace shredder
