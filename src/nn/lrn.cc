/**
 * @file
 * Implementation of local response normalization (AlexNet-era LRN).
 */
#include "src/nn/lrn.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

LocalResponseNorm::LocalResponseNorm(const LrnConfig& config)
    : config_(config)
{
    SHREDDER_REQUIRE(config.size > 0 && config.beta > 0.0f,
                     "bad LRN config");
}

Shape
LocalResponseNorm::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() == 4, "LRN wants NCHW, got ", in.to_string());
    return in;
}

Tensor
LocalResponseNorm::forward(const Tensor& x, ExecutionContext& ctx,
                           Mode /*mode*/) const
{
    const std::int64_t batch = x.shape()[0], chans = x.shape()[1];
    const std::int64_t hw = x.shape()[2] * x.shape()[3];
    const std::int64_t half = config_.size / 2;
    const float alpha_over_n =
        config_.alpha / static_cast<float>(config_.size);

    Tensor scale(x.shape());
    Tensor y(x.shape());
    const float* xp = x.data();
    float* sp = scale.data();
    float* yp = y.data();

    for (std::int64_t n = 0; n < batch; ++n) {
        const float* xn = xp + n * chans * hw;
        float* sn = sp + n * chans * hw;
        float* yn = yp + n * chans * hw;
        for (std::int64_t c = 0; c < chans; ++c) {
            const std::int64_t lo = std::max<std::int64_t>(0, c - half);
            const std::int64_t hi =
                std::min<std::int64_t>(chans - 1, c + half);
            for (std::int64_t i = 0; i < hw; ++i) {
                double acc = 0.0;
                for (std::int64_t cc = lo; cc <= hi; ++cc) {
                    const float v = xn[cc * hw + i];
                    acc += static_cast<double>(v) * v;
                }
                const float s =
                    config_.k + alpha_over_n * static_cast<float>(acc);
                sn[c * hw + i] = s;
                yn[c * hw + i] =
                    xn[c * hw + i] / std::pow(s, config_.beta);
            }
        }
    }
    if (ctx.retain_activations()) {
        LayerState& state = ctx.state(this);
        state.cached = x;
        state.aux = std::move(scale);
    }
    return y;
}

Tensor
LocalResponseNorm::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const LayerState& state = ctx.state(this);
    const Tensor& x = state.cached;
    SHREDDER_CHECK(!x.empty(), "LRN::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == x.shape(), "LRN grad shape mismatch");

    const std::int64_t batch = x.shape()[0], chans = x.shape()[1];
    const std::int64_t hw = x.shape()[2] * x.shape()[3];
    const std::int64_t half = config_.size / 2;
    const float alpha_over_n =
        config_.alpha / static_cast<float>(config_.size);

    // dL/dx_c = g_c·s_c^{−β}
    //   − 2αβ/n · x_c · Σ_{c′: c∈window(c′)} g_{c′}·x_{c′}·s_{c′}^{−β−1}
    Tensor grad_in(x.shape());
    const float* xp = x.data();
    const float* sp = state.aux.data();
    const float* gp = grad_out.data();
    float* op = grad_in.data();

    for (std::int64_t n = 0; n < batch; ++n) {
        const float* xn = xp + n * chans * hw;
        const float* sn = sp + n * chans * hw;
        const float* gn = gp + n * chans * hw;
        float* on = op + n * chans * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
            // Precompute t_{c′} = g·x·s^{−β−1} per channel at pixel i.
            for (std::int64_t c = 0; c < chans; ++c) {
                const float s = sn[c * hw + i];
                const float s_pow = std::pow(s, -config_.beta);
                on[c * hw + i] = gn[c * hw + i] * s_pow;
            }
            for (std::int64_t c = 0; c < chans; ++c) {
                const std::int64_t lo = std::max<std::int64_t>(0, c - half);
                const std::int64_t hi =
                    std::min<std::int64_t>(chans - 1, c + half);
                double cross = 0.0;
                for (std::int64_t cc = lo; cc <= hi; ++cc) {
                    const float s = sn[cc * hw + i];
                    cross += static_cast<double>(gn[cc * hw + i]) *
                             xn[cc * hw + i] *
                             std::pow(s, -config_.beta - 1.0f);
                }
                on[c * hw + i] -= 2.0f * alpha_over_n * config_.beta *
                                  xn[c * hw + i] *
                                  static_cast<float>(cross);
            }
        }
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
