/**
 * @file
 * Architecture-aware `Sequential` serialization — the `SARC` codec.
 *
 * The checkpoint format (`Sequential::save_checkpoint`) stores only
 * parameters and *verifies* topology against an already-constructed
 * network; it cannot rebuild one. Deployment needs more: a device that
 * cold-starts from a bundle has no application code describing the
 * model, so the bundle must carry the topology itself. `save_arch`
 * writes, per layer, a stable kind tag (`Layer::kind()`), a
 * length-prefixed static-config blob, and the layer's parameter
 * tensors; `load_arch` rebuilds the exact `Sequential` through a
 * layer-tag registry mapping each kind to a config writer and a
 * factory.
 *
 * Byte layout (all little-endian; see docs/DEPLOYMENT.md for the
 * normative spec):
 *
 *   magic   u32  'SARC' (0x43524153)
 *   layers  u32
 *   per layer:
 *     tag     u32 len + bytes   Layer::kind()
 *     config  u32 len + bytes   kind-specific static config
 *     params  SHRT × N          tensors in parameters() order
 *
 * The config length is written explicitly so `load_arch` can verify
 * that a kind's reader consumed exactly the bytes its writer produced
 * — a malformed or version-skewed blob fails loudly instead of
 * de-syncing the stream.
 *
 * This codec sits below a trust boundary (bundles arrive from
 * elsewhere), so `load_arch` throws `SerializeError` on any malformed
 * input — unknown tag, truncation, config-length mismatch, parameter
 * shape mismatch — and never terminates the process.
 */
#ifndef SHREDDER_NN_ARCH_H
#define SHREDDER_NN_ARCH_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/sequential.h"

namespace shredder {
namespace nn {

/**
 * Write `net`'s full architecture (topology + static configs +
 * parameters) to a binary stream. Panics on stream failure; every
 * layer kind in `net` must be registered (all in-tree kinds are).
 */
void save_arch(std::ostream& os, const Sequential& net);

/**
 * Rebuild the exact network written by `save_arch`.
 *
 * @throws SerializeError on malformed input (bad magic, unknown layer
 *         tag, truncation, config/parameter mismatch).
 */
std::unique_ptr<Sequential> load_arch(std::istream& is);

/** True when the registry can (de)serialize layer kind `kind`. */
bool arch_registry_knows(const std::string& kind);

/** All registered layer kind tags, sorted (for docs and tests). */
std::vector<std::string> arch_registry_kinds();

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_ARCH_H
