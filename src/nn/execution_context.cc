/**
 * @file
 * Implementation of the per-call execution context.
 */
#include "src/nn/execution_context.h"

namespace shredder {
namespace nn {

void
LayerState::clear()
{
    cached = Tensor();
    aux = Tensor();
    in_shape = Shape();
    argmax.clear();
    mask.clear();
    stochastic = false;
}

}  // namespace nn
}  // namespace shredder
