/**
 * @file
 * Per-call activation state for stateless layer execution.
 *
 * Layers are *immutable* during the forward/backward pass: weights are
 * shared read-only and everything a layer must remember between
 * `forward` and `backward` (cached inputs, pooling argmax indices,
 * dropout masks, …) lives in an `ExecutionContext` owned by the
 * caller. One context = one logical inference/training stream, so any
 * number of contexts can run the *same* network concurrently without
 * replicating parameters — the property the `InferenceServer` uses to
 * keep several cloud forwards in flight at once on one set of weights.
 *
 * A context is keyed by layer identity: each layer reads and writes
 * its own `LayerState` slot via `state(this)`. The context also owns
 *
 *  - a `ScratchArena` for short-lived float workspaces (im2col
 *    buffers, GEMM packing) so serial per-call scratch never contends
 *    across contexts, and
 *  - an optional `Rng` for stochastic layers (dropout): seed it per
 *    stream for independent masks; unseeded contexts fall back to ONE
 *    fixed default seed, so two default-constructed training streams
 *    draw identical mask sequences (reproducible, but correlated).
 *
 * Thread contract: a context may only be used by one thread at a
 * time. Different contexts are fully independent — using two contexts
 * from two threads on the same layers is safe and is the intended
 * concurrency model.
 *
 * Lifetime contract: state is keyed by layer address, so a context
 * must not outlive the layers it has executed — a freshly allocated
 * layer landing on a recycled address would read a dead layer's
 * stale slot. Call `clear()` (or use a fresh context) when reusing a
 * context across model rebuilds.
 *
 * Forward-only streams (serving) can call
 * `set_retain_activations(false)`: layers then skip writing the
 * caches only `backward` reads, saving one full activation copy per
 * layer per call. A later `backward` on such a context panics with
 * "without forward", which is the correct diagnosis.
 */
#ifndef SHREDDER_NN_EXECUTION_CONTEXT_H
#define SHREDDER_NN_EXECUTION_CONTEXT_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/tensor/rng.h"
#include "src/tensor/scratch.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace nn {

/**
 * Activation caches one layer keeps between `forward` and `backward`.
 *
 * A plain union-of-needs struct instead of per-layer subclasses: the
 * layer set is closed and small, and a concrete struct keeps the hot
 * path free of type erasure. Each layer uses the fields its backward
 * needs and ignores the rest (see the field comments for who uses
 * what).
 */
struct LayerState
{
    /**
     * Primary tensor cache: the input (`Linear`, `Conv2d`, `ReLU`,
     * `LeakyReLU`, `LocalResponseNorm`) or the output (`Tanh`,
     * `Sigmoid`, `Softmax`) of the last forward.
     */
    Tensor cached;
    /** Secondary tensor cache (`LocalResponseNorm`'s scale map). */
    Tensor aux;
    /** Input shape for reshape/spatial layers (`Flatten`, pools, …). */
    Shape in_shape;
    /** Flat argmax index per output element (`MaxPool2d`). */
    std::vector<std::int64_t> argmax;
    /** Per-element survivor scale, 0 or 1/(1−p) (`Dropout`). */
    std::vector<float> mask;
    /** True when the last forward was stochastic (`Dropout` kTrain). */
    bool stochastic = false;

    /** Drop all cached data (keeps capacity where cheap). */
    void clear();
};

/** See file comment. */
class ExecutionContext
{
  public:
    /** Context whose RNG falls back to the fixed default seed. */
    ExecutionContext() = default;

    /** Context whose RNG is seeded for reproducible stochastic layers. */
    explicit ExecutionContext(std::uint64_t rng_seed) { seed_rng(rng_seed); }

    ExecutionContext(const ExecutionContext&) = delete;
    ExecutionContext& operator=(const ExecutionContext&) = delete;

    /**
     * The state slot of `layer` (created empty on first access).
     * Layers call this as `ctx.state(this)`.
     */
    LayerState& state(const void* layer) { return states_[layer]; }

    /** Number of layers that have state in this context. */
    std::size_t num_states() const { return states_.size(); }

    /** Drop every layer's cached state (capacity is released). */
    void clear() { states_.clear(); }

    /**
     * Whether layers should store the activation caches `backward`
     * needs (default true). Forward-only streams turn this off to
     * skip one activation copy per layer per call.
     */
    bool retain_activations() const { return retain_activations_; }

    /** See `retain_activations`. */
    void set_retain_activations(bool retain)
    {
        retain_activations_ = retain;
    }

    /** (Re)seed the context RNG. */
    void seed_rng(std::uint64_t seed)
    {
        rng_ = std::make_unique<Rng>(seed);
    }

    /**
     * The context's RNG for stochastic layers. Lazily constructed with
     * a fixed default seed when `seed_rng` was never called, so
     * dropout is reproducible per context by default.
     */
    Rng& rng()
    {
        if (!rng_) {
            rng_ = std::make_unique<Rng>(kDefaultRngSeed);
        }
        return *rng_;
    }

    /**
     * Scratch workspace private to this context. Serial layer code
     * (e.g. `Conv2d::backward`) leases im2col buffers here so
     * concurrent contexts never share scratch; code already running on
     * pool workers keeps using `ScratchArena::for_this_thread()`.
     */
    ScratchArena& scratch() { return arena_; }

  private:
    static constexpr std::uint64_t kDefaultRngSeed = 0xD80D0D80ULL;

    std::unordered_map<const void*, LayerState> states_;
    std::unique_ptr<Rng> rng_;
    ScratchArena arena_;
    bool retain_activations_ = true;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_EXECUTION_CONTEXT_H
