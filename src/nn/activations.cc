/**
 * @file
 * Implementation of the activation layers (ReLU, Tanh).
 */
#include "src/nn/activations.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Tensor
ReLU::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    Tensor y = x;
    float* p = y.data();
    const std::int64_t n = y.size();
    for (std::int64_t i = 0; i < n; ++i) {
        if (p[i] < 0.0f) {
            p[i] = 0.0f;
        }
    }
    if (ctx.retain_activations()) {
        ctx.state(this).cached = x;
    }
    return y;
}

Tensor
ReLU::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& cached = ctx.state(this).cached;
    SHREDDER_CHECK(!cached.empty(), "ReLU::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == cached.shape(),
                   "ReLU grad shape mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    const float* x = cached.data();
    const std::int64_t n = grad_in.size();
    for (std::int64_t i = 0; i < n; ++i) {
        if (x[i] <= 0.0f) {
            g[i] = 0.0f;
        }
    }
    return grad_in;
}

Tensor
Tanh::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    Tensor y = x;
    float* p = y.data();
    const std::int64_t n = y.size();
    for (std::int64_t i = 0; i < n; ++i) {
        p[i] = std::tanh(p[i]);
    }
    if (ctx.retain_activations()) {
        ctx.state(this).cached = y;
    }
    return y;
}

Tensor
Tanh::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& cached = ctx.state(this).cached;
    SHREDDER_CHECK(!cached.empty(), "Tanh::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == cached.shape(),
                   "Tanh grad shape mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    const float* y = cached.data();
    const std::int64_t n = grad_in.size();
    for (std::int64_t i = 0; i < n; ++i) {
        g[i] *= 1.0f - y[i] * y[i];
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
