/**
 * @file
 * Implementation of the activation layers (ReLU, Tanh, Sigmoid).
 */
#include "src/nn/activations.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Tensor
ReLU::forward(const Tensor& x, Mode /*mode*/)
{
    Tensor y = x;
    float* p = y.data();
    const std::int64_t n = y.size();
    for (std::int64_t i = 0; i < n; ++i) {
        if (p[i] < 0.0f) {
            p[i] = 0.0f;
        }
    }
    cached_input_ = x;
    return y;
}

Tensor
ReLU::backward(const Tensor& grad_out)
{
    SHREDDER_CHECK(!cached_input_.empty(), "ReLU::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == cached_input_.shape(),
                   "ReLU grad shape mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    const float* x = cached_input_.data();
    const std::int64_t n = grad_in.size();
    for (std::int64_t i = 0; i < n; ++i) {
        if (x[i] <= 0.0f) {
            g[i] = 0.0f;
        }
    }
    return grad_in;
}

Tensor
Tanh::forward(const Tensor& x, Mode /*mode*/)
{
    Tensor y = x;
    float* p = y.data();
    const std::int64_t n = y.size();
    for (std::int64_t i = 0; i < n; ++i) {
        p[i] = std::tanh(p[i]);
    }
    cached_output_ = y;
    return y;
}

Tensor
Tanh::backward(const Tensor& grad_out)
{
    SHREDDER_CHECK(!cached_output_.empty(),
                   "Tanh::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == cached_output_.shape(),
                   "Tanh grad shape mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    const float* y = cached_output_.data();
    const std::int64_t n = grad_in.size();
    for (std::int64_t i = 0; i < n; ++i) {
        g[i] *= 1.0f - y[i] * y[i];
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
