/**
 * @file
 * Implementation of the softmax cross-entropy loss.
 */
#include "src/nn/loss.h"

#include <cmath>

#include "src/runtime/logging.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace nn {

LossResult
CrossEntropyLoss::compute(const Tensor& logits,
                          const std::vector<std::int64_t>& labels) const
{
    SHREDDER_REQUIRE(logits.shape().rank() == 2,
                     "CrossEntropyLoss wants rank-2 logits");
    const std::int64_t batch = logits.shape()[0];
    const std::int64_t classes = logits.shape()[1];
    SHREDDER_REQUIRE(static_cast<std::int64_t>(labels.size()) == batch,
                     "label count ", labels.size(), " != batch ", batch);

    const Tensor log_probs = ops::log_softmax_rows(logits);
    double loss = 0.0;
    Tensor grad(logits.shape());
    const float* lp = log_probs.data();
    float* gp = grad.data();
    const float inv_batch = 1.0f / static_cast<float>(batch);

    for (std::int64_t n = 0; n < batch; ++n) {
        const std::int64_t y = labels[static_cast<std::size_t>(n)];
        SHREDDER_REQUIRE(y >= 0 && y < classes, "label ", y,
                         " out of range [0, ", classes, ")");
        loss -= lp[n * classes + y];
        for (std::int64_t c = 0; c < classes; ++c) {
            const float p = std::exp(lp[n * classes + c]);
            gp[n * classes + c] =
                (p - (c == y ? 1.0f : 0.0f)) * inv_batch;
        }
    }
    LossResult out;
    out.value = loss / static_cast<double>(batch);
    out.grad = std::move(grad);
    return out;
}

LossResult
MseLoss::compute(const Tensor& output, const Tensor& target) const
{
    SHREDDER_REQUIRE(output.shape() == target.shape(),
                     "MseLoss shape mismatch");
    const std::int64_t n = output.size();
    LossResult out;
    out.value = ops::mse(output, target);
    out.grad = ops::sub(output, target);
    ops::scale_inplace(out.grad, 2.0f / static_cast<float>(n));
    return out;
}

double
accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels)
{
    SHREDDER_REQUIRE(logits.shape().rank() == 2,
                     "accuracy wants rank-2 logits");
    const auto preds = ops::argmax_rows(logits);
    SHREDDER_REQUIRE(preds.size() == labels.size(),
                     "accuracy label count mismatch");
    if (preds.empty()) {
        return 0.0;
    }
    std::int64_t correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == labels[i]) {
            ++correct;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(preds.size());
}

}  // namespace nn
}  // namespace shredder
