/**
 * @file
 * Spatial pooling layers (max and average) over NCHW batches.
 */
#ifndef SHREDDER_NN_POOL_H
#define SHREDDER_NN_POOL_H

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Static configuration shared by the pooling layers. */
struct PoolConfig
{
    std::int64_t kernel = 2;
    std::int64_t stride = 2;
    std::int64_t padding = 0;
};

/** Max pooling; argmax indices routed through the context. */
class MaxPool2d final : public Layer
{
  public:
    explicit MaxPool2d(const PoolConfig& config);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "maxpool2d"; }
    Shape output_shape(const Shape& in) const override;

    const PoolConfig& config() const { return config_; }

  private:
    PoolConfig config_;
};

/** Average pooling; gradients spread uniformly over the window. */
class AvgPool2d final : public Layer
{
  public:
    explicit AvgPool2d(const PoolConfig& config);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "avgpool2d"; }
    Shape output_shape(const Shape& in) const override;

    const PoolConfig& config() const { return config_; }

  private:
    PoolConfig config_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_POOL_H
