/**
 * @file
 * Spatial pooling layers (max and average) over NCHW batches.
 */
#ifndef SHREDDER_NN_POOL_H
#define SHREDDER_NN_POOL_H

#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Static configuration shared by the pooling layers. */
struct PoolConfig
{
    std::int64_t kernel = 2;
    std::int64_t stride = 2;
    std::int64_t padding = 0;
};

/** Max pooling; remembers argmax indices for routing gradients. */
class MaxPool2d final : public Layer
{
  public:
    explicit MaxPool2d(const PoolConfig& config);

    Tensor forward(const Tensor& x, Mode mode) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string kind() const override { return "maxpool2d"; }
    Shape output_shape(const Shape& in) const override;

    const PoolConfig& config() const { return config_; }

  private:
    PoolConfig config_;
    Shape cached_in_shape_;
    std::vector<std::int64_t> argmax_;  ///< Flat input index per output.
};

/** Average pooling; gradients spread uniformly over the window. */
class AvgPool2d final : public Layer
{
  public:
    explicit AvgPool2d(const PoolConfig& config);

    Tensor forward(const Tensor& x, Mode mode) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string kind() const override { return "avgpool2d"; }
    Shape output_shape(const Shape& in) const override;

    const PoolConfig& config() const { return config_; }

  private:
    PoolConfig config_;
    Shape cached_in_shape_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_POOL_H
