/**
 * @file
 * Implementation of the weight initializers.
 */
#include "src/nn/init.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

void
kaiming_normal(Tensor& t, std::int64_t fan_in, Rng& rng)
{
    SHREDDER_REQUIRE(fan_in > 0, "kaiming init needs positive fan_in");
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    float* p = t.data();
    for (std::int64_t i = 0; i < t.size(); ++i) {
        p[i] = rng.normal(0.0f, stddev);
    }
}

void
xavier_uniform(Tensor& t, std::int64_t fan_in, std::int64_t fan_out,
               Rng& rng)
{
    SHREDDER_REQUIRE(fan_in > 0 && fan_out > 0,
                     "xavier init needs positive fans");
    const float a =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    float* p = t.data();
    for (std::int64_t i = 0; i < t.size(); ++i) {
        p[i] = rng.uniform(-a, a);
    }
}

}  // namespace nn
}  // namespace shredder
