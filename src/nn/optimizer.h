/**
 * @file
 * Gradient-descent optimizers (SGD with momentum, Adam).
 *
 * Optimizers hold *references* to the parameters they update and skip
 * frozen ones — this is how Shredder trains the noise tensor while the
 * network weights stay untouched (paper §2.1: only n is trainable).
 */
#ifndef SHREDDER_NN_OPTIMIZER_H
#define SHREDDER_NN_OPTIMIZER_H

#include <cstdint>
#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace nn {

/** Abstract optimizer over a fixed parameter set. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<Parameter*> params);
    virtual ~Optimizer() = default;

    /** Apply one update using the accumulated gradients. */
    virtual void step() = 0;

    /** Zero all gradients (call between batches). */
    void zero_grad();

    /** Current learning rate. */
    float learning_rate() const { return lr_; }

    /** Adjust learning rate (schedules). */
    void set_learning_rate(float lr) { lr_ = lr; }

    /** The parameters under management. */
    const std::vector<Parameter*>& params() const { return params_; }

  protected:
    std::vector<Parameter*> params_;
    float lr_ = 1e-3f;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd final : public Optimizer
{
  public:
    /**
     * @param params        Parameters to update (frozen ones skipped).
     * @param lr            Learning rate.
     * @param momentum      Momentum factor (0 disables).
     * @param weight_decay  L2 penalty added to gradients.
     */
    Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f,
        float weight_decay = 0.0f);

    void step() override;

  private:
    float momentum_;
    float weight_decay_;
    std::vector<Tensor> velocity_;
};

/**
 * Adam (Kingma & Ba, 2015) — the optimizer the paper uses for noise
 * training (§3.2).
 */
class Adam final : public Optimizer
{
  public:
    Adam(std::vector<Parameter*> params, float lr = 1e-3f,
         float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

    void step() override;

  private:
    float beta1_, beta2_, eps_;
    std::int64_t t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_OPTIMIZER_H
