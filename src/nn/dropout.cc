/**
 * @file
 * Implementation of the `Dropout` layer.
 */
#include "src/nn/dropout.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Dropout::Dropout(float p) : p_(p)
{
    SHREDDER_REQUIRE(p >= 0.0f && p < 1.0f,
                     "dropout probability must be in [0, 1), got ", p);
}

Tensor
Dropout::forward(const Tensor& x, ExecutionContext& ctx, Mode mode) const
{
    LayerState& state = ctx.state(this);
    if (mode == Mode::kEval || p_ == 0.0f) {
        state.stochastic = false;
        return x;
    }
    state.stochastic = true;
    const float keep_scale = 1.0f / (1.0f - p_);
    // Forward-only contexts still drop, but skip storing the mask
    // (backward on such a context fails its size check, correctly).
    const bool retain = ctx.retain_activations();
    if (retain) {
        state.mask.resize(static_cast<std::size_t>(x.size()));
    } else {
        state.mask.clear();
    }
    Rng& rng = ctx.rng();
    Tensor y = x;
    float* yp = y.data();
    for (std::int64_t i = 0; i < y.size(); ++i) {
        const float m =
            rng.bernoulli(static_cast<double>(p_)) ? 0.0f : keep_scale;
        if (retain) {
            state.mask[static_cast<std::size_t>(i)] = m;
        }
        yp[i] *= m;
    }
    return y;
}

Tensor
Dropout::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const LayerState& state = ctx.state(this);
    if (!state.stochastic) {
        return grad_out;
    }
    SHREDDER_CHECK(static_cast<std::size_t>(grad_out.size()) ==
                       state.mask.size(),
                   "Dropout grad size mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    for (std::int64_t i = 0; i < grad_in.size(); ++i) {
        g[i] *= state.mask[static_cast<std::size_t>(i)];
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
