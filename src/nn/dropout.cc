/**
 * @file
 * Implementation of the `Dropout` layer.
 */
#include "src/nn/dropout.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(rng.fork())
{
    SHREDDER_REQUIRE(p >= 0.0f && p < 1.0f,
                     "dropout probability must be in [0, 1), got ", p);
}

Tensor
Dropout::forward(const Tensor& x, Mode mode)
{
    if (mode == Mode::kEval || p_ == 0.0f) {
        last_was_train_ = false;
        return x;
    }
    last_was_train_ = true;
    const float keep_scale = 1.0f / (1.0f - p_);
    mask_.resize(static_cast<std::size_t>(x.size()));
    Tensor y = x;
    float* yp = y.data();
    for (std::int64_t i = 0; i < y.size(); ++i) {
        const float m =
            rng_.bernoulli(static_cast<double>(p_)) ? 0.0f : keep_scale;
        mask_[static_cast<std::size_t>(i)] = m;
        yp[i] *= m;
    }
    return y;
}

Tensor
Dropout::backward(const Tensor& grad_out)
{
    if (!last_was_train_) {
        return grad_out;
    }
    SHREDDER_CHECK(static_cast<std::size_t>(grad_out.size()) ==
                       mask_.size(),
                   "Dropout grad size mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    for (std::int64_t i = 0; i < grad_in.size(); ++i) {
        g[i] *= mask_[static_cast<std::size_t>(i)];
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
