/**
 * @file
 * Additional layers: Sigmoid, LeakyReLU, Softmax and nearest-neighbor
 * 2× upsampling. The upsampler is what the reconstruction-attack
 * decoder (src/attacks) uses to invert pooled feature maps back to
 * image resolution.
 */
#ifndef SHREDDER_NN_EXTRAS_H
#define SHREDDER_NN_EXTRAS_H

#include <string>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Logistic sigmoid: y = 1 / (1 + e^{−x}). */
class Sigmoid final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "sigmoid"; }
    Shape output_shape(const Shape& in) const override { return in; }
};

/** Leaky rectifier: y = x if x > 0 else slope·x. */
class LeakyReLU final : public Layer
{
  public:
    explicit LeakyReLU(float slope = 0.01f);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "leaky_relu"; }
    Shape output_shape(const Shape& in) const override { return in; }

    float slope() const { return slope_; }

  private:
    float slope_;
};

/**
 * Row-wise softmax as a layer (rank-2 inputs). Usually the loss folds
 * this in, but attack decoders and calibration tools want it exposed.
 */
class Softmax final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "softmax"; }
    Shape output_shape(const Shape& in) const override;
};

/**
 * Crop an NCHW tensor to a target spatial size (top-left anchored).
 * Backward zero-pads the gradient back to the input extent. Used by
 * decoders whose doubling stages overshoot the image size.
 */
class Crop2d final : public Layer
{
  public:
    /**
     * @param height  Target H (must not exceed the input's).
     * @param width   Target W.
     */
    Crop2d(std::int64_t height, std::int64_t width);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "crop2d"; }
    Shape output_shape(const Shape& in) const override;

    std::int64_t height() const { return height_; }
    std::int64_t width() const { return width_; }

  private:
    std::int64_t height_, width_;
};

/**
 * Nearest-neighbor 2× spatial upsampling of NCHW tensors. Backward
 * sums each 2×2 output block's gradient into its source pixel.
 */
class Upsample2x final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "upsample2x"; }
    Shape output_shape(const Shape& in) const override;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_EXTRAS_H
