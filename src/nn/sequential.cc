/**
 * @file
 * Implementation of the `Sequential` layer container.
 */
#include "src/nn/sequential.h"

#include <fstream>

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x504b4853;  // 'SHKP'

}  // namespace

Sequential&
Sequential::add(LayerPtr layer)
{
    SHREDDER_REQUIRE(layer != nullptr, "null layer added to Sequential");
    layers_.push_back(std::move(layer));
    return *this;
}

Layer&
Sequential::layer(std::int64_t i)
{
    SHREDDER_CHECK(i >= 0 && i < size(), "layer index ", i, " out of ",
                   size());
    return *layers_[static_cast<std::size_t>(i)];
}

const Layer&
Sequential::layer(std::int64_t i) const
{
    SHREDDER_CHECK(i >= 0 && i < size(), "layer index ", i, " out of ",
                   size());
    return *layers_[static_cast<std::size_t>(i)];
}

Tensor
Sequential::forward(const Tensor& x, ExecutionContext& ctx, Mode mode) const
{
    return forward_range(x, 0, size(), ctx, mode);
}

Tensor
Sequential::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    return backward_range(grad_out, 0, size(), ctx);
}

Shape
Sequential::output_shape(const Shape& in) const
{
    return output_shape_range(in, 0, size());
}

std::vector<Parameter*>
Sequential::parameters()
{
    std::vector<Parameter*> out;
    for (auto& l : layers_) {
        for (Parameter* p : l->parameters()) {
            out.push_back(p);
        }
    }
    return out;
}

std::int64_t
Sequential::macs(const Shape& in) const
{
    return macs_range(in, 0, size());
}

void
Sequential::save_params(std::ostream& os) const
{
    for (const auto& l : layers_) {
        l->save_params(os);
    }
}

void
Sequential::load_params(std::istream& is)
{
    for (auto& l : layers_) {
        l->load_params(is);
    }
}

Tensor
Sequential::forward_range(const Tensor& x, std::int64_t begin,
                          std::int64_t end, ExecutionContext& ctx,
                          Mode mode) const
{
    if (end < 0) {
        end = size();
    }
    SHREDDER_REQUIRE(begin >= 0 && begin <= end && end <= size(),
                     "bad forward range [", begin, ", ", end, ")");
    Tensor cur = x;
    for (std::int64_t i = begin; i < end; ++i) {
        cur = layers_[static_cast<std::size_t>(i)]->forward(cur, ctx, mode);
    }
    return cur;
}

Tensor
Sequential::backward_range(const Tensor& grad_out, std::int64_t begin,
                           std::int64_t end, ExecutionContext& ctx)
{
    if (end < 0) {
        end = size();
    }
    SHREDDER_REQUIRE(begin >= 0 && begin <= end && end <= size(),
                     "bad backward range [", begin, ", ", end, ")");
    Tensor grad = grad_out;
    for (std::int64_t i = end - 1; i >= begin; --i) {
        grad = layers_[static_cast<std::size_t>(i)]->backward(grad, ctx);
    }
    return grad;
}

Shape
Sequential::output_shape_range(const Shape& in, std::int64_t begin,
                               std::int64_t end) const
{
    if (end < 0) {
        end = size();
    }
    SHREDDER_REQUIRE(begin >= 0 && begin <= end && end <= size(),
                     "bad shape range [", begin, ", ", end, ")");
    Shape cur = in;
    for (std::int64_t i = begin; i < end; ++i) {
        cur = layers_[static_cast<std::size_t>(i)]->output_shape(cur);
    }
    return cur;
}

std::int64_t
Sequential::macs_range(const Shape& in, std::int64_t begin,
                       std::int64_t end) const
{
    if (end < 0) {
        end = size();
    }
    SHREDDER_REQUIRE(begin >= 0 && begin <= end && end <= size(),
                     "bad macs range [", begin, ", ", end, ")");
    std::int64_t total = 0;
    Shape cur = in;
    for (std::int64_t i = begin; i < end; ++i) {
        total += layers_[static_cast<std::size_t>(i)]->macs(cur);
        cur = layers_[static_cast<std::size_t>(i)]->output_shape(cur);
    }
    return total;
}

void
Sequential::save_checkpoint(const std::string& path) const
{
    std::ofstream os(path, std::ios::binary);
    SHREDDER_REQUIRE(os.good(), "cannot open checkpoint for write: ", path);
    os.write(reinterpret_cast<const char*>(&kCheckpointMagic),
             sizeof(kCheckpointMagic));
    const auto count = static_cast<std::uint32_t>(layers_.size());
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& l : layers_) {
        const std::string tag = l->kind();
        const auto len = static_cast<std::uint32_t>(tag.size());
        os.write(reinterpret_cast<const char*>(&len), sizeof(len));
        os.write(tag.data(), static_cast<std::streamsize>(tag.size()));
        l->save_params(os);
    }
    SHREDDER_REQUIRE(os.good(), "checkpoint write failed: ", path);
}

void
Sequential::load_checkpoint(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    SHREDDER_REQUIRE(is.good(), "cannot open checkpoint: ", path);
    std::uint32_t magic = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    SHREDDER_REQUIRE(magic == kCheckpointMagic, "bad checkpoint magic in ",
                     path);
    std::uint32_t count = 0;
    is.read(reinterpret_cast<char*>(&count), sizeof(count));
    SHREDDER_REQUIRE(count == layers_.size(), "checkpoint has ", count,
                     " layers; network has ", layers_.size());
    for (auto& l : layers_) {
        std::uint32_t len = 0;
        is.read(reinterpret_cast<char*>(&len), sizeof(len));
        SHREDDER_REQUIRE(is.good() && len < 256, "corrupt checkpoint tag");
        std::string tag(len, '\0');
        is.read(tag.data(), len);
        SHREDDER_REQUIRE(tag == l->kind(), "checkpoint layer kind '", tag,
                         "' does not match network layer '", l->kind(),
                         "'");
        l->load_params(is);
    }
}

std::int64_t
Sequential::num_parameters() const
{
    std::int64_t total = 0;
    auto params = const_cast<Sequential*>(this)->parameters();
    for (const Parameter* p : params) {
        total += p->size();
    }
    return total;
}

}  // namespace nn
}  // namespace shredder
