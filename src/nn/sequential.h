/**
 * @file
 * Sequential container — an ordered layer pipeline.
 *
 * Supports *range* execution (`forward_range` / `backward_range`),
 * which is the mechanism the split-execution substrate uses to run the
 * local network L = layers [0, cut) on the edge and the remote network
 * R = layers [cut, size) on the cloud, and to back-propagate through R
 * only (Shredder never needs gradients through L — the noise enters
 * after the cut, see paper §2.1).
 */
#ifndef SHREDDER_NN_SEQUENTIAL_H
#define SHREDDER_NN_SEQUENTIAL_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Ordered pipeline of layers with checkpoint support. */
class Sequential final : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer (takes ownership). Returns `*this` for chaining. */
    Sequential& add(LayerPtr layer);

    /** Convenience: construct the layer in place. */
    template <typename L, typename... Args>
    Sequential&
    emplace(Args&&... args)
    {
        return add(std::make_unique<L>(std::forward<Args>(args)...));
    }

    /** Number of layers. */
    std::int64_t size() const
    {
        return static_cast<std::int64_t>(layers_.size());
    }

    /** Borrow layer `i` (0-based). */
    Layer& layer(std::int64_t i);
    const Layer& layer(std::int64_t i) const;

    // -- Layer interface --------------------------------------------------

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "sequential"; }
    Shape output_shape(const Shape& in) const override;
    std::vector<Parameter*> parameters() override;
    std::int64_t macs(const Shape& in) const override;
    void save_params(std::ostream& os) const override;
    void load_params(std::istream& is) override;

    // -- Range execution (split inference) --------------------------------

    /**
     * Run layers [begin, end) only. `const`: per-call state goes into
     * `ctx`, so concurrent range forwards with distinct contexts are
     * safe on one network.
     *
     * @param x      Input to layer `begin`.
     * @param begin  First layer index (inclusive).
     * @param end    Last layer index (exclusive); −1 means size().
     * @param ctx    Per-call activation state.
     * @param mode   Execution mode.
     */
    Tensor forward_range(const Tensor& x, std::int64_t begin,
                         std::int64_t end, ExecutionContext& ctx,
                         Mode mode) const;

    /**
     * Back-propagate through layers [begin, end) in reverse. Must
     * follow a matching `forward_range` (or full `forward`) *with the
     * same context*.
     *
     * @returns Gradient with respect to the input of layer `begin`.
     */
    Tensor backward_range(const Tensor& grad_out, std::int64_t begin,
                          std::int64_t end, ExecutionContext& ctx);

    /** Output shape after running layers [begin, end) on shape `in`. */
    Shape output_shape_range(const Shape& in, std::int64_t begin,
                             std::int64_t end) const;

    /** Per-sample MACs of layers [begin, end) for input shape `in`. */
    std::int64_t macs_range(const Shape& in, std::int64_t begin,
                            std::int64_t end) const;

    // -- Checkpoints -------------------------------------------------------

    /**
     * Save all parameters to a file. Format: magic, layer count, per
     * layer its kind tag + parameters.
     */
    void save_checkpoint(const std::string& path) const;

    /**
     * Load a checkpoint produced by `save_checkpoint` into this
     * (identically structured) network. Fatal on any mismatch.
     */
    void load_checkpoint(const std::string& path);

    /** Total number of trainable scalars. */
    std::int64_t num_parameters() const;

  private:
    std::vector<LayerPtr> layers_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_SEQUENTIAL_H
