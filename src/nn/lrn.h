/**
 * @file
 * Local response normalization (across channels), as in AlexNet.
 */
#ifndef SHREDDER_NN_LRN_H
#define SHREDDER_NN_LRN_H

#include <string>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Static configuration of an LRN layer (AlexNet defaults). */
struct LrnConfig
{
    std::int64_t size = 5;     ///< Channel window width.
    float alpha = 1e-4f;
    float beta = 0.75f;
    float k = 2.0f;
};

/**
 * Across-channel LRN:
 *   y[c] = x[c] / (k + α/size · Σ_{c′∈window(c)} x[c′]²)^β
 *
 * Backward implements the exact analytic gradient.
 */
class LocalResponseNorm final : public Layer
{
  public:
    explicit LocalResponseNorm(const LrnConfig& config);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "lrn"; }
    Shape output_shape(const Shape& in) const override;

    const LrnConfig& config() const { return config_; }

  private:
    LrnConfig config_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_LRN_H
