/**
 * @file
 * Pointwise activation layers (ReLU, Tanh). Stateless: activation
 * caches live in the caller's `ExecutionContext`.
 */
#ifndef SHREDDER_NN_ACTIVATIONS_H
#define SHREDDER_NN_ACTIVATIONS_H

#include <string>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Rectified linear unit: y = max(0, x). */
class ReLU final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "relu"; }
    Shape output_shape(const Shape& in) const override { return in; }
};

/** Hyperbolic tangent activation (classic LeNet uses it). */
class Tanh final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "tanh"; }
    Shape output_shape(const Shape& in) const override { return in; }
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_ACTIVATIONS_H
