/**
 * @file
 * Pointwise activation layers (ReLU, Tanh).
 */
#ifndef SHREDDER_NN_ACTIVATIONS_H
#define SHREDDER_NN_ACTIVATIONS_H

#include <string>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Rectified linear unit: y = max(0, x). */
class ReLU final : public Layer
{
  public:
    Tensor forward(const Tensor& x, Mode mode) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string kind() const override { return "relu"; }
    Shape output_shape(const Shape& in) const override { return in; }

  private:
    Tensor cached_input_;
};

/** Hyperbolic tangent activation (classic LeNet uses it). */
class Tanh final : public Layer
{
  public:
    Tensor forward(const Tensor& x, Mode mode) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string kind() const override { return "tanh"; }
    Shape output_shape(const Shape& in) const override { return in; }

  private:
    Tensor cached_output_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_ACTIVATIONS_H
