/**
 * @file
 * Implementation of the SGD and Adam optimizers.
 */
#include "src/nn/optimizer.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params))
{
    for (const Parameter* p : params_) {
        SHREDDER_REQUIRE(p != nullptr, "null parameter given to optimizer");
    }
}

void
Optimizer::zero_grad()
{
    for (Parameter* p : params_) {
        p->zero_grad();
    }
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum),
      weight_decay_(weight_decay)
{
    lr_ = lr;
    velocity_.reserve(params_.size());
    for (const Parameter* p : params_) {
        velocity_.emplace_back(p->value.shape());
    }
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter* p = params_[i];
        if (p->frozen) {
            continue;
        }
        float* w = p->value.data();
        const float* g = p->grad.data();
        float* v = velocity_[i].data();
        const std::int64_t n = p->size();
        for (std::int64_t j = 0; j < n; ++j) {
            float grad = g[j] + weight_decay_ * w[j];
            if (momentum_ != 0.0f) {
                v[j] = momentum_ * v[j] + grad;
                grad = v[j];
            }
            w[j] -= lr_ * grad;
        }
    }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps)
{
    lr_ = lr;
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Parameter* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void
Adam::step()
{
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Parameter* p = params_[i];
        if (p->frozen) {
            continue;
        }
        float* w = p->value.data();
        const float* g = p->grad.data();
        float* m = m_[i].data();
        float* v = v_[i].data();
        const std::int64_t n = p->size();
        for (std::int64_t j = 0; j < n; ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
            const double m_hat = m[j] / bias1;
            const double v_hat = v[j] / bias2;
            w[j] -= static_cast<float>(lr_ * m_hat /
                                       (std::sqrt(v_hat) + eps_));
        }
    }
}

}  // namespace nn
}  // namespace shredder
