/**
 * @file
 * Implementation of the fully connected `Linear` layer.
 */
#include "src/nn/linear.h"

#include "src/nn/init.h"
#include "src/runtime/logging.h"
#include "src/tensor/gemm.h"

namespace shredder {
namespace nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features),
      with_bias_(with_bias)
{
    SHREDDER_REQUIRE(in_features > 0 && out_features > 0,
                     "bad Linear dims ", in_features, "x", out_features);
    Tensor w(Shape({out_features, in_features}));
    kaiming_normal(w, in_features, rng);
    weight_ = Parameter("linear.weight", std::move(w));
    if (with_bias_) {
        bias_ = Parameter("linear.bias", Tensor(Shape({out_features})));
    }
}

Shape
Linear::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() == 2, "Linear wants rank-2 input, got ",
                     in.to_string());
    SHREDDER_REQUIRE(in[1] == in_features_, "Linear expects width ",
                     in_features_, ", got ", in[1]);
    return Shape({in[0], out_features_});
}

std::vector<Parameter*>
Linear::parameters()
{
    std::vector<Parameter*> out{&weight_};
    if (with_bias_) {
        out.push_back(&bias_);
    }
    return out;
}

std::int64_t
Linear::macs(const Shape& /*in*/) const
{
    return in_features_ * out_features_;
}

Tensor
Linear::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    const Shape out_shape = output_shape(x.shape());
    const std::int64_t batch = x.shape()[0];
    Tensor y(out_shape);
    // y[N, out] = x[N, in] · Wᵀ[in, out]
    gemm(false, true, batch, out_features_, in_features_, 1.0f, x.data(),
         weight_.value.data(), 0.0f, y.data());
    if (with_bias_) {
        const float* bp = bias_.value.data();
        float* yp = y.data();
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t o = 0; o < out_features_; ++o) {
                yp[n * out_features_ + o] += bp[o];
            }
        }
    }
    if (ctx.retain_activations()) {
        ctx.state(this).cached = x;
    }
    return y;
}

Tensor
Linear::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& x = ctx.state(this).cached;
    SHREDDER_CHECK(!x.empty(), "Linear::backward without forward");
    const std::int64_t batch = x.shape()[0];
    SHREDDER_CHECK(grad_out.shape() == Shape({batch, out_features_}),
                   "Linear grad shape mismatch");

    if (!weight_.frozen) {
        // dW[out, in] += gᵀ[out, N] · x[N, in]
        gemm(true, false, out_features_, in_features_, batch, 1.0f,
             grad_out.data(), x.data(), 1.0f, weight_.grad.data());
    }
    if (with_bias_ && !bias_.frozen) {
        float* bg = bias_.grad.data();
        const float* gp = grad_out.data();
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t o = 0; o < out_features_; ++o) {
                bg[o] += gp[n * out_features_ + o];
            }
        }
    }
    // dx[N, in] = g[N, out] · W[out, in]
    Tensor grad_in(x.shape());
    gemm(false, false, batch, in_features_, out_features_, 1.0f,
         grad_out.data(), weight_.value.data(), 0.0f, grad_in.data());
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
