/**
 * @file
 * Fully-connected (affine) layer.
 */
#ifndef SHREDDER_NN_LINEAR_H
#define SHREDDER_NN_LINEAR_H

#include <string>
#include <vector>

#include "src/nn/layer.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace nn {

/**
 * y = x · Wᵀ + b with W stored [out_features, in_features].
 *
 * Inputs are rank-2 [N, in_features]; use Flatten before this layer
 * for image activations.
 */
class Linear final : public Layer
{
  public:
    /**
     * Construct with Kaiming-He initialization.
     *
     * @param in_features   Input width.
     * @param out_features  Output width.
     * @param rng           Weight-init randomness.
     * @param with_bias     Allocate a bias vector.
     */
    Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
           bool with_bias = true);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;

    std::string kind() const override { return "linear"; }
    Shape output_shape(const Shape& in) const override;
    std::vector<Parameter*> parameters() override;
    std::int64_t macs(const Shape& in) const override;

    std::int64_t in_features() const { return in_features_; }
    std::int64_t out_features() const { return out_features_; }
    /** True when the layer carries a bias vector. */
    bool has_bias() const { return with_bias_; }
    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }

  private:
    std::int64_t in_features_;
    std::int64_t out_features_;
    bool with_bias_;
    Parameter weight_;  ///< [out, in]
    Parameter bias_;    ///< [out]
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_LINEAR_H
