/**
 * @file
 * Implementation of the `SARC` architecture codec and its layer-tag
 * registry.
 */
#include "src/nn/arch.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dropout.h"
#include "src/nn/extras.h"
#include "src/nn/flatten.h"
#include "src/nn/linear.h"
#include "src/nn/lrn.h"
#include "src/nn/pool.h"
#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace nn {

namespace {

constexpr std::uint32_t kArchMagic = 0x43524153;  // 'SARC'

/** Registry entry: config writer + factory for one layer kind. */
struct KindCodec
{
    /** Serialize the layer's static config (not its parameters). */
    void (*write_config)(std::ostream&, const Layer&);
    /** Rebuild the layer from its config; parameters loaded after. */
    LayerPtr (*read_config)(std::istream&);
};

/**
 * Weight-init randomness for factory-constructed layers. The values
 * are irrelevant — `load_arch` overwrites every parameter from the
 * stream right after construction — but the ctors require a source.
 */
Rng&
init_rng()
{
    thread_local Rng rng(0);
    return rng;
}

template <typename L>
LayerPtr
make_plain(std::istream&)
{
    return std::make_unique<L>();
}

void
write_nothing(std::ostream&, const Layer&)
{
}

std::int64_t
read_dim(std::istream& is, const char* what)
{
    const auto v = static_cast<std::int64_t>(wire::read_u64(is));
    if (v < 0 || v >= (1LL << 32)) {
        std::ostringstream oss;
        oss << "bad " << what << " " << v << " in layer config";
        throw SerializeError(oss.str());
    }
    return v;
}

const std::map<std::string, KindCodec>&
registry()
{
    static const std::map<std::string, KindCodec> reg = {
        {"relu", {write_nothing, make_plain<ReLU>}},
        {"tanh", {write_nothing, make_plain<Tanh>}},
        {"sigmoid", {write_nothing, make_plain<Sigmoid>}},
        {"softmax", {write_nothing, make_plain<Softmax>}},
        {"flatten", {write_nothing, make_plain<Flatten>}},
        {"identity", {write_nothing, make_plain<Identity>}},
        {"upsample2x", {write_nothing, make_plain<Upsample2x>}},
        {"leaky_relu",
         {[](std::ostream& os, const Layer& l) {
              wire::write_f32(os,
                              static_cast<const LeakyReLU&>(l).slope());
          },
          [](std::istream& is) -> LayerPtr {
              return std::make_unique<LeakyReLU>(wire::read_f32(is));
          }}},
        {"dropout",
         {[](std::ostream& os, const Layer& l) {
              wire::write_f32(
                  os, static_cast<const Dropout&>(l).drop_probability());
          },
          [](std::istream& is) -> LayerPtr {
              const float p = wire::read_f32(is);
              if (!(p >= 0.0f && p < 1.0f)) {
                  throw SerializeError("bad dropout probability");
              }
              return std::make_unique<Dropout>(p);
          }}},
        {"crop2d",
         {[](std::ostream& os, const Layer& l) {
              const auto& c = static_cast<const Crop2d&>(l);
              wire::write_u64(os, static_cast<std::uint64_t>(c.height()));
              wire::write_u64(os, static_cast<std::uint64_t>(c.width()));
          },
          [](std::istream& is) -> LayerPtr {
              const std::int64_t h = read_dim(is, "crop height");
              const std::int64_t w = read_dim(is, "crop width");
              if (h <= 0 || w <= 0) {
                  throw SerializeError("bad crop2d extent");
              }
              return std::make_unique<Crop2d>(h, w);
          }}},
        {"conv2d",
         {[](std::ostream& os, const Layer& l) {
              const Conv2dConfig& c =
                  static_cast<const Conv2d&>(l).config();
              wire::write_u64(os,
                              static_cast<std::uint64_t>(c.in_channels));
              wire::write_u64(os,
                              static_cast<std::uint64_t>(c.out_channels));
              wire::write_u64(os, static_cast<std::uint64_t>(c.kernel));
              wire::write_u64(os, static_cast<std::uint64_t>(c.stride));
              wire::write_u64(os, static_cast<std::uint64_t>(c.padding));
              wire::write_u8(os, c.bias ? 1 : 0);
          },
          [](std::istream& is) -> LayerPtr {
              Conv2dConfig c;
              c.in_channels = read_dim(is, "conv in_channels");
              c.out_channels = read_dim(is, "conv out_channels");
              c.kernel = read_dim(is, "conv kernel");
              c.stride = read_dim(is, "conv stride");
              c.padding = read_dim(is, "conv padding");
              c.bias = wire::read_u8(is) != 0;
              if (c.in_channels <= 0 || c.out_channels <= 0 ||
                  c.kernel <= 0 || c.stride <= 0 || c.padding < 0) {
                  throw SerializeError("bad conv2d geometry");
              }
              return std::make_unique<Conv2d>(c, init_rng());
          }}},
        {"linear",
         {[](std::ostream& os, const Layer& l) {
              const auto& lin = static_cast<const Linear&>(l);
              wire::write_u64(os,
                              static_cast<std::uint64_t>(lin.in_features()));
              wire::write_u64(
                  os, static_cast<std::uint64_t>(lin.out_features()));
              wire::write_u8(os, lin.has_bias() ? 1 : 0);
          },
          [](std::istream& is) -> LayerPtr {
              const std::int64_t in = read_dim(is, "linear in_features");
              const std::int64_t out = read_dim(is, "linear out_features");
              const bool bias = wire::read_u8(is) != 0;
              if (in <= 0 || out <= 0) {
                  throw SerializeError("bad linear geometry");
              }
              return std::make_unique<Linear>(in, out, init_rng(), bias);
          }}},
        {"maxpool2d",
         {[](std::ostream& os, const Layer& l) {
              const PoolConfig& c =
                  static_cast<const MaxPool2d&>(l).config();
              wire::write_u64(os, static_cast<std::uint64_t>(c.kernel));
              wire::write_u64(os, static_cast<std::uint64_t>(c.stride));
              wire::write_u64(os, static_cast<std::uint64_t>(c.padding));
          },
          [](std::istream& is) -> LayerPtr {
              PoolConfig c;
              c.kernel = read_dim(is, "pool kernel");
              c.stride = read_dim(is, "pool stride");
              c.padding = read_dim(is, "pool padding");
              if (c.kernel <= 0 || c.stride <= 0 || c.padding < 0) {
                  throw SerializeError("bad maxpool2d geometry");
              }
              return std::make_unique<MaxPool2d>(c);
          }}},
        {"avgpool2d",
         {[](std::ostream& os, const Layer& l) {
              const PoolConfig& c =
                  static_cast<const AvgPool2d&>(l).config();
              wire::write_u64(os, static_cast<std::uint64_t>(c.kernel));
              wire::write_u64(os, static_cast<std::uint64_t>(c.stride));
              wire::write_u64(os, static_cast<std::uint64_t>(c.padding));
          },
          [](std::istream& is) -> LayerPtr {
              PoolConfig c;
              c.kernel = read_dim(is, "pool kernel");
              c.stride = read_dim(is, "pool stride");
              c.padding = read_dim(is, "pool padding");
              if (c.kernel <= 0 || c.stride <= 0 || c.padding < 0) {
                  throw SerializeError("bad avgpool2d geometry");
              }
              return std::make_unique<AvgPool2d>(c);
          }}},
        {"lrn",
         {[](std::ostream& os, const Layer& l) {
              const LrnConfig& c =
                  static_cast<const LocalResponseNorm&>(l).config();
              wire::write_u64(os, static_cast<std::uint64_t>(c.size));
              wire::write_f32(os, c.alpha);
              wire::write_f32(os, c.beta);
              wire::write_f32(os, c.k);
          },
          [](std::istream& is) -> LayerPtr {
              LrnConfig c;
              c.size = read_dim(is, "lrn size");
              c.alpha = wire::read_f32(is);
              c.beta = wire::read_f32(is);
              c.k = wire::read_f32(is);
              if (c.size <= 0) {
                  throw SerializeError("bad lrn window size");
              }
              return std::make_unique<LocalResponseNorm>(c);
          }}},
    };
    return reg;
}

}  // namespace

void
save_arch(std::ostream& os, const Sequential& net)
{
    wire::write_u32(os, kArchMagic);
    wire::write_u32(os, static_cast<std::uint32_t>(net.size()));
    for (std::int64_t i = 0; i < net.size(); ++i) {
        const Layer& layer = net.layer(i);
        const std::string tag = layer.kind();
        const auto it = registry().find(tag);
        SHREDDER_REQUIRE(it != registry().end(),
                         "layer kind '", tag,
                         "' is not in the arch registry — register it "
                         "before bundling");
        wire::write_string(os, tag);
        std::ostringstream config(std::ios::binary);
        it->second.write_config(config, layer);
        wire::write_string(os, config.str());
        layer.save_params(os);
    }
    SHREDDER_CHECK(static_cast<bool>(os), "arch write failed");
}

std::unique_ptr<Sequential>
load_arch(std::istream& is)
{
    wire::expect_magic(is, kArchMagic, "arch");
    const std::uint32_t count = wire::read_u32(is);
    if (count > 4096) {
        throw SerializeError("implausible layer count in arch stream");
    }
    auto net = std::make_unique<Sequential>();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::string tag = wire::read_string(is, /*max_len=*/256);
        const auto it = registry().find(tag);
        if (it == registry().end()) {
            throw SerializeError("unknown layer tag '" + tag +
                                 "' in arch stream");
        }
        const std::string config = wire::read_string(is);
        std::istringstream config_stream(config, std::ios::binary);
        LayerPtr layer = it->second.read_config(config_stream);
        // The reader must consume the blob exactly: leftovers mean the
        // writer and reader disagree about this kind's config layout.
        config_stream.peek();
        if (!config_stream.eof()) {
            throw SerializeError("layer '" + tag +
                                 "' config blob has trailing bytes");
        }
        for (Parameter* p : layer->parameters()) {
            Tensor loaded = read_tensor_checked(is);
            if (!(loaded.shape() == p->value.shape())) {
                throw SerializeError(
                    "parameter shape mismatch for '" + tag + "' (" +
                    loaded.shape().to_string() + " vs " +
                    p->value.shape().to_string() + ")");
            }
            p->value = std::move(loaded);
        }
        net->add(std::move(layer));
    }
    return net;
}

bool
arch_registry_knows(const std::string& kind)
{
    return registry().count(kind) > 0;
}

std::vector<std::string>
arch_registry_kinds()
{
    std::vector<std::string> kinds;
    for (const auto& [tag, codec] : registry()) {
        (void)codec;
        kinds.push_back(tag);
    }
    return kinds;
}

}  // namespace nn
}  // namespace shredder
