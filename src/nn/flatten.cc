/**
 * @file
 * Implementation of the `Flatten` layer.
 */
#include "src/nn/flatten.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Shape
Flatten::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() >= 2, "Flatten wants rank >= 2, got ",
                     in.to_string());
    return Shape({in[0], in.numel() / in[0]});
}

Tensor
Flatten::forward(const Tensor& x, Mode /*mode*/)
{
    cached_in_shape_ = x.shape();
    return x.reshaped(output_shape(x.shape()));
}

Tensor
Flatten::backward(const Tensor& grad_out)
{
    SHREDDER_CHECK(cached_in_shape_.rank() >= 2,
                   "Flatten::backward without forward");
    return grad_out.reshaped(cached_in_shape_);
}

}  // namespace nn
}  // namespace shredder
