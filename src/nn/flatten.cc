/**
 * @file
 * Implementation of the `Flatten` layer.
 */
#include "src/nn/flatten.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace nn {

Shape
Flatten::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() >= 2, "Flatten wants rank >= 2, got ",
                     in.to_string());
    return Shape({in[0], in.numel() / in[0]});
}

Tensor
Flatten::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    ctx.state(this).in_shape = x.shape();
    return x.reshaped(output_shape(x.shape()));
}

Tensor
Flatten::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Shape& in_shape = ctx.state(this).in_shape;
    SHREDDER_CHECK(in_shape.rank() >= 2,
                   "Flatten::backward without forward");
    return grad_out.reshaped(in_shape);
}

}  // namespace nn
}  // namespace shredder
