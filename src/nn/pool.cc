/**
 * @file
 * Implementation of the max/average pooling layers.
 */
#include "src/nn/pool.h"

#include <algorithm>
#include <limits>

#include "src/runtime/logging.h"
#include "src/tensor/im2col.h"

namespace shredder {
namespace nn {

namespace {

Shape
pool_output_shape(const Shape& in, const PoolConfig& cfg, const char* what)
{
    SHREDDER_REQUIRE(in.rank() == 4, what, " wants NCHW, got ",
                     in.to_string());
    const std::int64_t oh =
        conv_out_extent(in[2], cfg.kernel, cfg.stride, cfg.padding);
    const std::int64_t ow =
        conv_out_extent(in[3], cfg.kernel, cfg.stride, cfg.padding);
    SHREDDER_REQUIRE(oh > 0 && ow > 0, what, " output collapses for ",
                     in.to_string());
    return Shape({in[0], in[1], oh, ow});
}

}  // namespace

MaxPool2d::MaxPool2d(const PoolConfig& config) : config_(config)
{
    SHREDDER_REQUIRE(config.kernel > 0 && config.stride > 0 &&
                         config.padding >= 0,
                     "bad MaxPool2d config");
}

Shape
MaxPool2d::output_shape(const Shape& in) const
{
    return pool_output_shape(in, config_, "MaxPool2d");
}

Tensor
MaxPool2d::forward(const Tensor& x, ExecutionContext& ctx,
                   Mode /*mode*/) const
{
    const Shape out_shape = output_shape(x.shape());
    const std::int64_t batch = x.shape()[0], chans = x.shape()[1];
    const std::int64_t ih = x.shape()[2], iw = x.shape()[3];
    const std::int64_t oh = out_shape[2], ow = out_shape[3];

    Tensor y(out_shape);
    // The argmax table is one int64 per output element — as big as the
    // output itself — so forward-only contexts skip recording it.
    const bool retain = ctx.retain_activations();
    LayerState& state = ctx.state(this);
    std::vector<std::int64_t>& argmax = state.argmax;
    if (retain) {
        argmax.assign(static_cast<std::size_t>(y.size()), -1);
        state.in_shape = x.shape();
    }

    const float* xp = x.data();
    float* yp = y.data();
    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < chans; ++c) {
            const float* plane = xp + (n * chans + c) * ih * iw;
            const std::int64_t plane_base = (n * chans + c) * ih * iw;
            for (std::int64_t i = 0; i < oh; ++i) {
                for (std::int64_t j = 0; j < ow; ++j, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_idx = -1;
                    for (std::int64_t ki = 0; ki < config_.kernel; ++ki) {
                        const std::int64_t r =
                            i * config_.stride - config_.padding + ki;
                        if (r < 0 || r >= ih) {
                            continue;
                        }
                        for (std::int64_t kj = 0; kj < config_.kernel;
                             ++kj) {
                            const std::int64_t col =
                                j * config_.stride - config_.padding + kj;
                            if (col < 0 || col >= iw) {
                                continue;
                            }
                            const float v = plane[r * iw + col];
                            if (v > best) {
                                best = v;
                                best_idx = plane_base + r * iw + col;
                            }
                        }
                    }
                    SHREDDER_CHECK(best_idx >= 0,
                                   "empty max-pool window");
                    yp[out_idx] = best;
                    if (retain) {
                        argmax[static_cast<std::size_t>(out_idx)] =
                            best_idx;
                    }
                }
            }
        }
    }
    return y;
}

Tensor
MaxPool2d::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const LayerState& state = ctx.state(this);
    SHREDDER_CHECK(state.in_shape.rank() == 4,
                   "MaxPool2d::backward without forward");
    SHREDDER_CHECK(static_cast<std::size_t>(grad_out.size()) ==
                       state.argmax.size(),
                   "MaxPool2d grad size mismatch");
    Tensor grad_in(state.in_shape);
    float* gi = grad_in.data();
    const float* go = grad_out.data();
    for (std::size_t i = 0; i < state.argmax.size(); ++i) {
        gi[state.argmax[i]] += go[static_cast<std::int64_t>(i)];
    }
    return grad_in;
}

AvgPool2d::AvgPool2d(const PoolConfig& config) : config_(config)
{
    SHREDDER_REQUIRE(config.kernel > 0 && config.stride > 0 &&
                         config.padding >= 0,
                     "bad AvgPool2d config");
}

Shape
AvgPool2d::output_shape(const Shape& in) const
{
    return pool_output_shape(in, config_, "AvgPool2d");
}

Tensor
AvgPool2d::forward(const Tensor& x, ExecutionContext& ctx,
                   Mode /*mode*/) const
{
    const Shape out_shape = output_shape(x.shape());
    const std::int64_t batch = x.shape()[0], chans = x.shape()[1];
    const std::int64_t ih = x.shape()[2], iw = x.shape()[3];
    const std::int64_t oh = out_shape[2], ow = out_shape[3];
    const float inv_area =
        1.0f / static_cast<float>(config_.kernel * config_.kernel);

    Tensor y(out_shape);
    ctx.state(this).in_shape = x.shape();

    const float* xp = x.data();
    float* yp = y.data();
    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < chans; ++c) {
            const float* plane = xp + (n * chans + c) * ih * iw;
            for (std::int64_t i = 0; i < oh; ++i) {
                for (std::int64_t j = 0; j < ow; ++j, ++out_idx) {
                    double s = 0.0;
                    for (std::int64_t ki = 0; ki < config_.kernel; ++ki) {
                        const std::int64_t r =
                            i * config_.stride - config_.padding + ki;
                        if (r < 0 || r >= ih) {
                            continue;
                        }
                        for (std::int64_t kj = 0; kj < config_.kernel;
                             ++kj) {
                            const std::int64_t col =
                                j * config_.stride - config_.padding + kj;
                            if (col < 0 || col >= iw) {
                                continue;
                            }
                            s += plane[r * iw + col];
                        }
                    }
                    yp[out_idx] = static_cast<float>(s) * inv_area;
                }
            }
        }
    }
    return y;
}

Tensor
AvgPool2d::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Shape in_shape = ctx.state(this).in_shape;
    SHREDDER_CHECK(in_shape.rank() == 4,
                   "AvgPool2d::backward without forward");
    const Shape out_shape = output_shape(in_shape);
    SHREDDER_CHECK(grad_out.shape() == out_shape,
                   "AvgPool2d grad shape mismatch");
    const std::int64_t batch = in_shape[0];
    const std::int64_t chans = in_shape[1];
    const std::int64_t ih = in_shape[2], iw = in_shape[3];
    const std::int64_t oh = out_shape[2], ow = out_shape[3];
    const float inv_area =
        1.0f / static_cast<float>(config_.kernel * config_.kernel);

    Tensor grad_in(in_shape);
    float* gi = grad_in.data();
    const float* go = grad_out.data();
    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < chans; ++c) {
            float* plane = gi + (n * chans + c) * ih * iw;
            for (std::int64_t i = 0; i < oh; ++i) {
                for (std::int64_t j = 0; j < ow; ++j, ++out_idx) {
                    const float g = go[out_idx] * inv_area;
                    for (std::int64_t ki = 0; ki < config_.kernel; ++ki) {
                        const std::int64_t r =
                            i * config_.stride - config_.padding + ki;
                        if (r < 0 || r >= ih) {
                            continue;
                        }
                        for (std::int64_t kj = 0; kj < config_.kernel;
                             ++kj) {
                            const std::int64_t col =
                                j * config_.stride - config_.padding + kj;
                            if (col < 0 || col >= iw) {
                                continue;
                            }
                            plane[r * iw + col] += g;
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
