/**
 * @file
 * The layer abstraction every network component implements.
 *
 * A layer owns its parameters only; the activations it must remember
 * between `forward` and `backward` live in the caller-supplied
 * `ExecutionContext` (see execution_context.h). `forward` is `const`:
 * it never mutates the layer, so one layer (one set of weights) can
 * serve any number of concurrent contexts. The per-context contract is
 * strict forward-then-backward: `backward(grad, ctx)` may rely on
 * caches written into `ctx` by the immediately preceding `forward`
 * call *with that same context*.
 */
#ifndef SHREDDER_NN_LAYER_H
#define SHREDDER_NN_LAYER_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/execution_context.h"
#include "src/nn/parameter.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace nn {

/** Execution mode: training enables dropout and gradient caching. */
enum class Mode {
    kTrain,
    kEval,
};

/** Abstract network layer. See file comment for the contract. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Compute the layer output. Must not mutate the layer: all
     * per-call state goes through `ctx`.
     *
     * @param x     Input activation (batch-leading).
     * @param ctx   Per-call activation state (written for `backward`).
     * @param mode  kTrain enables stochastic behaviour (dropout) and
     *              guarantees caches needed by `backward`.
     */
    virtual Tensor forward(const Tensor& x, ExecutionContext& ctx,
                           Mode mode) const = 0;

    /**
     * Back-propagate using the caches `forward` left in `ctx`.
     * Accumulates parameter gradients (unless frozen) and returns the
     * gradient with respect to the layer input. Parameter-gradient
     * accumulation is the one shared mutation: run at most one
     * backward stream per layer at a time.
     */
    virtual Tensor backward(const Tensor& grad_out,
                            ExecutionContext& ctx) = 0;

    /** Stable type tag used by the checkpoint format. */
    virtual std::string kind() const = 0;

    /** Output shape for a given input shape (no evaluation). */
    virtual Shape output_shape(const Shape& in) const = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Parameter*> parameters() { return {}; }

    /**
     * Multiply-accumulate count for one *sample* (batch dim excluded)
     * with the given input shape. Cost-model hook for the paper's
     * Fig. 6 computation axis.
     */
    virtual std::int64_t macs(const Shape& /*in*/) const { return 0; }

    /** Serialize parameters (not topology) to a stream. */
    virtual void save_params(std::ostream& os) const;

    /** Deserialize parameters written by `save_params`. */
    virtual void load_params(std::istream& is);

    /** Freeze / unfreeze all parameters of this layer. */
    void set_frozen(bool frozen);

    /** Zero all parameter gradients. */
    void zero_grad();
};

/** Owning pointer alias used across the API. */
using LayerPtr = std::unique_ptr<Layer>;

/** Pass-through layer (useful as a placeholder in topologies). */
class Identity final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& /*ctx*/,
                   Mode /*mode*/) const override
    {
        return x;
    }
    Tensor backward(const Tensor& grad_out,
                    ExecutionContext& /*ctx*/) override
    {
        return grad_out;
    }
    std::string kind() const override { return "identity"; }
    Shape output_shape(const Shape& in) const override { return in; }
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_LAYER_H
