/**
 * @file
 * Implementation of the `Layer` interface plumbing.
 */
#include "src/nn/layer.h"

#include <istream>
#include <ostream>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace nn {

void
Layer::save_params(std::ostream& os) const
{
    // const_cast is safe: parameters() is logically const; the base
    // interface keeps it non-const so optimizers can mutate in place.
    auto params = const_cast<Layer*>(this)->parameters();
    for (const Parameter* p : params) {
        write_tensor(os, p->value);
    }
}

void
Layer::load_params(std::istream& is)
{
    for (Parameter* p : parameters()) {
        Tensor loaded = read_tensor(is);
        SHREDDER_REQUIRE(loaded.shape() == p->value.shape(),
                         "checkpoint shape mismatch for ", p->name, ": ",
                         loaded.shape().to_string(), " vs ",
                         p->value.shape().to_string());
        p->value = std::move(loaded);
    }
}

void
Layer::set_frozen(bool frozen)
{
    for (Parameter* p : parameters()) {
        p->frozen = frozen;
    }
}

void
Layer::zero_grad()
{
    for (Parameter* p : parameters()) {
        p->zero_grad();
    }
}

}  // namespace nn
}  // namespace shredder
