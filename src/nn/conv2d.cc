/**
 * @file
 * Implementation of `Conv2d`: im2col lowering into the packed GEMM, with
 * per-thread scratch buffers.
 */
#include "src/nn/conv2d.h"

#include <vector>

#include "src/nn/init.h"
#include "src/runtime/logging.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/gemm.h"
#include "src/tensor/im2col.h"
#include "src/tensor/scratch.h"

namespace shredder {
namespace nn {

Conv2d::Conv2d(const Conv2dConfig& config, Rng& rng) : config_(config)
{
    SHREDDER_REQUIRE(config.in_channels > 0 && config.out_channels > 0 &&
                         config.kernel > 0 && config.stride > 0 &&
                         config.padding >= 0,
                     "bad Conv2d config");
    const std::int64_t fan_in =
        config.in_channels * config.kernel * config.kernel;
    Tensor w(Shape({config.out_channels, fan_in}));
    kaiming_normal(w, fan_in, rng);
    weight_ = Parameter("conv2d.weight", std::move(w));
    if (config.bias) {
        bias_ = Parameter("conv2d.bias", Tensor(Shape({config.out_channels})));
    }
}

Shape
Conv2d::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() == 4, "Conv2d wants NCHW, got ",
                     in.to_string());
    SHREDDER_REQUIRE(in[1] == config_.in_channels, "Conv2d expects ",
                     config_.in_channels, " channels, got ", in[1]);
    const std::int64_t oh =
        conv_out_extent(in[2], config_.kernel, config_.stride,
                        config_.padding);
    const std::int64_t ow =
        conv_out_extent(in[3], config_.kernel, config_.stride,
                        config_.padding);
    SHREDDER_REQUIRE(oh > 0 && ow > 0, "Conv2d output collapses for input ",
                     in.to_string());
    return Shape({in[0], config_.out_channels, oh, ow});
}

std::vector<Parameter*>
Conv2d::parameters()
{
    std::vector<Parameter*> out{&weight_};
    if (config_.bias) {
        out.push_back(&bias_);
    }
    return out;
}

std::int64_t
Conv2d::macs(const Shape& in) const
{
    const Shape out = output_shape(in);
    const std::int64_t fan_in =
        config_.in_channels * config_.kernel * config_.kernel;
    // Per sample: every output element is a fan_in-long dot product.
    return config_.out_channels * out[2] * out[3] * fan_in;
}

Tensor
Conv2d::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    const Shape out_shape = output_shape(x.shape());
    const std::int64_t batch = x.shape()[0];
    const std::int64_t in_c = x.shape()[1];
    const std::int64_t in_h = x.shape()[2];
    const std::int64_t in_w = x.shape()[3];
    const std::int64_t out_c = out_shape[1];
    const std::int64_t out_h = out_shape[2];
    const std::int64_t out_w = out_shape[3];
    const std::int64_t col_rows = in_c * config_.kernel * config_.kernel;
    const std::int64_t col_cols = out_h * out_w;

    Tensor y(out_shape);
    const float* xp = x.data();
    float* yp = y.data();
    const float* wp = weight_.value.data();

    parallel_for(0, batch, [&](std::int64_t n) {
        // Per-thread scratch (not the context's arena): these chunks
        // run on pool workers, each of which owns a private arena.
        ScratchLease col = ScratchArena::for_this_thread().acquire(
            static_cast<std::size_t>(col_rows * col_cols));
        im2col(xp + n * in_c * in_h * in_w, in_c, in_h, in_w,
               config_.kernel, config_.kernel, config_.stride,
               config_.stride, config_.padding, config_.padding,
               col.data());
        // out[Cout, OHOW] = W[Cout, col_rows] · col[col_rows, OHOW]
        gemm(false, false, out_c, col_cols, col_rows, 1.0f, wp, col.data(),
             0.0f, yp + n * out_c * col_cols);
        if (config_.bias) {
            const float* bp = bias_.value.data();
            float* orow = yp + n * out_c * col_cols;
            for (std::int64_t c = 0; c < out_c; ++c) {
                const float b = bp[c];
                for (std::int64_t i = 0; i < col_cols; ++i) {
                    orow[c * col_cols + i] += b;
                }
            }
        }
    });

    if (ctx.retain_activations()) {
        ctx.state(this).cached = x;
    }
    return y;
}

Tensor
Conv2d::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& x = ctx.state(this).cached;
    SHREDDER_CHECK(!x.empty(), "Conv2d::backward without forward");
    const Shape out_shape = output_shape(x.shape());
    SHREDDER_CHECK(grad_out.shape() == out_shape,
                   "Conv2d grad shape mismatch: ",
                   grad_out.shape().to_string(), " vs ",
                   out_shape.to_string());

    const std::int64_t batch = x.shape()[0];
    const std::int64_t in_c = x.shape()[1];
    const std::int64_t in_h = x.shape()[2];
    const std::int64_t in_w = x.shape()[3];
    const std::int64_t out_c = out_shape[1];
    const std::int64_t out_h = out_shape[2];
    const std::int64_t out_w = out_shape[3];
    const std::int64_t col_rows = in_c * config_.kernel * config_.kernel;
    const std::int64_t col_cols = out_h * out_w;

    Tensor grad_in(x.shape());
    const float* gp = grad_out.data();
    const float* wp = weight_.value.data();
    const bool need_wgrad = !weight_.frozen;

    // The context's arena: backward is serial over the batch, so the
    // scratch stays private to this call even with other contexts
    // forwarding concurrently on other threads.
    ScratchArena& arena = ctx.scratch();
    ScratchLease col =
        arena.acquire(static_cast<std::size_t>(col_rows * col_cols));
    ScratchLease col_grad =
        arena.acquire(static_cast<std::size_t>(col_rows * col_cols));

    // Serial over batch: weight gradients accumulate into shared
    // storage and batches are small; correctness over parallelism here.
    for (std::int64_t n = 0; n < batch; ++n) {
        const float* gn = gp + n * out_c * col_cols;
        if (need_wgrad) {
            im2col(x.data() + n * in_c * in_h * in_w, in_c, in_h, in_w,
                   config_.kernel, config_.kernel, config_.stride,
                   config_.stride, config_.padding, config_.padding,
                   col.data());
            // dW[Cout, col_rows] += g[Cout, OHOW] · colᵀ[OHOW, col_rows]
            gemm(false, true, out_c, col_rows, col_cols, 1.0f, gn,
                 col.data(), 1.0f, weight_.grad.data());
        }
        // col_grad[col_rows, OHOW] = Wᵀ[col_rows, Cout] · g[Cout, OHOW]
        gemm(true, false, col_rows, col_cols, out_c, 1.0f, wp, gn, 0.0f,
             col_grad.data());
        col2im(col_grad.data(), in_c, in_h, in_w, config_.kernel,
               config_.kernel, config_.stride, config_.stride,
               config_.padding, config_.padding,
               grad_in.data() + n * in_c * in_h * in_w);
    }

    if (config_.bias && !bias_.frozen) {
        float* bg = bias_.grad.data();
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t c = 0; c < out_c; ++c) {
                const float* row = gp + (n * out_c + c) * col_cols;
                double s = 0.0;
                for (std::int64_t i = 0; i < col_cols; ++i) {
                    s += row[i];
                }
                bg[c] += static_cast<float>(s);
            }
        }
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
