/**
 * @file
 * Weight initialization schemes for layer parameters.
 */
#ifndef SHREDDER_NN_INIT_H
#define SHREDDER_NN_INIT_H

#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace nn {

/**
 * Kaiming-He normal init for ReLU networks: N(0, √(2 / fan_in)).
 *
 * @param t       Weight tensor to fill.
 * @param fan_in  Number of input connections per output unit.
 */
void kaiming_normal(Tensor& t, std::int64_t fan_in, Rng& rng);

/**
 * Xavier-Glorot uniform init: U(−a, a), a = √(6 / (fan_in + fan_out)).
 */
void xavier_uniform(Tensor& t, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng);

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_INIT_H
