/**
 * @file
 * 2-D convolution layer (NCHW) implemented as im2col + GEMM.
 */
#ifndef SHREDDER_NN_CONV2D_H
#define SHREDDER_NN_CONV2D_H

#include <string>
#include <vector>

#include "src/nn/layer.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace nn {

/** Static configuration of a Conv2d layer. */
struct Conv2dConfig
{
    std::int64_t in_channels = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t padding = 0;
    bool bias = true;
};

/**
 * 2-D convolution over NCHW batches.
 *
 * Forward: per-sample im2col unfolds patches into a
 * [Cin·K·K, OH·OW] matrix; the weight [Cout, Cin·K·K] GEMM produces
 * the output feature map. Backward recomputes im2col (memory over
 * speed) to accumulate weight gradients and uses col2im for the input
 * gradient.
 */
class Conv2d final : public Layer
{
  public:
    /**
     * Construct with Kaiming-He initialization.
     *
     * @param config  Layer geometry.
     * @param rng     Weight-init randomness.
     */
    Conv2d(const Conv2dConfig& config, Rng& rng);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;

    std::string kind() const override { return "conv2d"; }
    Shape output_shape(const Shape& in) const override;
    std::vector<Parameter*> parameters() override;
    std::int64_t macs(const Shape& in) const override;

    const Conv2dConfig& config() const { return config_; }
    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }

  private:
    Conv2dConfig config_;
    Parameter weight_;  ///< [Cout, Cin·K·K] (flattened filter bank).
    Parameter bias_;    ///< [Cout] (empty when config.bias == false).
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_CONV2D_H
