/**
 * @file
 * Loss functions. Each returns the scalar loss and the gradient with
 * respect to the network output (logits), which seeds back-propagation.
 */
#ifndef SHREDDER_NN_LOSS_H
#define SHREDDER_NN_LOSS_H

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace shredder {
namespace nn {

/** Value/gradient pair produced by a loss function. */
struct LossResult
{
    double value = 0.0;  ///< Mean loss over the batch.
    Tensor grad;         ///< dLoss/dLogits, same shape as the logits.
};

/**
 * Softmax cross-entropy over logits.
 *
 * The paper's Eq. 3 first term: −Σ_c y_{o,c} log p_{o,c}, averaged over
 * the batch. Gradient is (softmax(logits) − onehot) / N.
 */
class CrossEntropyLoss
{
  public:
    /**
     * @param logits  [N, M] raw scores.
     * @param labels  N class indices in [0, M).
     */
    LossResult compute(const Tensor& logits,
                       const std::vector<std::int64_t>& labels) const;
};

/** Mean squared error against a target tensor (diagnostics). */
class MseLoss
{
  public:
    LossResult compute(const Tensor& output, const Tensor& target) const;
};

/** Fraction of rows whose argmax equals the label. */
double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& labels);

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_LOSS_H
