/**
 * @file
 * Flatten layer: NCHW → N×(C·H·W).
 */
#ifndef SHREDDER_NN_FLATTEN_H
#define SHREDDER_NN_FLATTEN_H

#include <string>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/** Reshape image activations to rows (batch dimension preserved). */
class Flatten final : public Layer
{
  public:
    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "flatten"; }
    Shape output_shape(const Shape& in) const override;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_FLATTEN_H
