/**
 * @file
 * Inverted dropout layer.
 *
 * Fully stateless: the drop mask *and* the RNG that generates it live
 * in the caller's `ExecutionContext`. The seed-era implementation kept
 * both in layer members, which made eval-after-train behaviour
 * order-dependent (an eval forward cleared the train flag another
 * stream's backward still needed) and raced under concurrent
 * execution; per-context state removes both hazards — see the
 * regression tests in tests/test_layers.cc.
 */
#ifndef SHREDDER_NN_DROPOUT_H
#define SHREDDER_NN_DROPOUT_H

#include <string>

#include "src/nn/layer.h"

namespace shredder {
namespace nn {

/**
 * Inverted dropout: in kTrain mode each element is zeroed with
 * probability p and survivors are scaled by 1/(1−p), so kEval is a
 * pure pass-through. Masks are drawn from the context's RNG
 * (`ExecutionContext::rng`); seed the context for reproducible masks.
 */
class Dropout final : public Layer
{
  public:
    /** @param p  Drop probability in [0, 1). */
    explicit Dropout(float p);

    Tensor forward(const Tensor& x, ExecutionContext& ctx,
                   Mode mode) const override;
    Tensor backward(const Tensor& grad_out, ExecutionContext& ctx) override;
    std::string kind() const override { return "dropout"; }
    Shape output_shape(const Shape& in) const override { return in; }

    float drop_probability() const { return p_; }

  private:
    float p_;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_DROPOUT_H
