/**
 * @file
 * Inverted dropout layer.
 */
#ifndef SHREDDER_NN_DROPOUT_H
#define SHREDDER_NN_DROPOUT_H

#include <string>
#include <vector>

#include "src/nn/layer.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace nn {

/**
 * Inverted dropout: in kTrain mode each element is zeroed with
 * probability p and survivors are scaled by 1/(1−p), so kEval is a
 * pure pass-through.
 */
class Dropout final : public Layer
{
  public:
    /**
     * @param p    Drop probability in [0, 1).
     * @param rng  Source of the drop masks (forked for independence).
     */
    Dropout(float p, Rng& rng);

    Tensor forward(const Tensor& x, Mode mode) override;
    Tensor backward(const Tensor& grad_out) override;
    std::string kind() const override { return "dropout"; }
    Shape output_shape(const Shape& in) const override { return in; }

    float drop_probability() const { return p_; }

  private:
    float p_;
    Rng rng_;
    std::vector<float> mask_;  ///< Scale applied per element (0 or 1/(1−p)).
    bool last_was_train_ = false;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_DROPOUT_H
