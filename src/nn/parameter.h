/**
 * @file
 * Trainable parameter: a value tensor paired with its gradient.
 *
 * The `frozen` flag is central to Shredder: the pre-trained model's
 * weights are frozen during noise learning, so layers skip gradient
 * accumulation for them and optimizers skip their update. The *noise
 * tensor* is itself exposed to the optimizer as one `Parameter`.
 */
#ifndef SHREDDER_NN_PARAMETER_H
#define SHREDDER_NN_PARAMETER_H

#include <string>

#include "src/tensor/tensor.h"

namespace shredder {
namespace nn {

/** A named, trainable tensor with gradient storage. */
struct Parameter
{
    Parameter() = default;

    /** Create with value tensor; gradient is allocated zero-filled. */
    Parameter(std::string param_name, Tensor initial)
        : name(std::move(param_name)), value(std::move(initial)),
          grad(value.shape())
    {}

    /** Reset gradient to zero. */
    void zero_grad() { grad.fill(0.0f); }

    /** Number of scalar elements. */
    std::int64_t size() const { return value.size(); }

    std::string name;
    Tensor value;
    Tensor grad;
    /** When true, layers skip grad accumulation and optimizers skip it. */
    bool frozen = false;
};

}  // namespace nn
}  // namespace shredder

#endif  // SHREDDER_NN_PARAMETER_H
