/**
 * @file
 * Implementation of the auxiliary layers beyond the paper's core set.
 */
#include "src/nn/extras.h"

#include <cmath>

#include "src/runtime/logging.h"
#include "src/tensor/ops.h"

namespace shredder {
namespace nn {

Tensor
Sigmoid::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    Tensor y = x;
    float* p = y.data();
    for (std::int64_t i = 0; i < y.size(); ++i) {
        p[i] = 1.0f / (1.0f + std::exp(-p[i]));
    }
    if (ctx.retain_activations()) {
        ctx.state(this).cached = y;
    }
    return y;
}

Tensor
Sigmoid::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& cached = ctx.state(this).cached;
    SHREDDER_CHECK(!cached.empty(), "Sigmoid::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == cached.shape(),
                   "Sigmoid grad shape mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    const float* y = cached.data();
    for (std::int64_t i = 0; i < grad_in.size(); ++i) {
        g[i] *= y[i] * (1.0f - y[i]);
    }
    return grad_in;
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope)
{
    SHREDDER_REQUIRE(slope >= 0.0f && slope < 1.0f,
                     "leaky slope must be in [0, 1), got ", slope);
}

Tensor
LeakyReLU::forward(const Tensor& x, ExecutionContext& ctx,
                   Mode /*mode*/) const
{
    Tensor y = x;
    float* p = y.data();
    for (std::int64_t i = 0; i < y.size(); ++i) {
        if (p[i] < 0.0f) {
            p[i] *= slope_;
        }
    }
    if (ctx.retain_activations()) {
        ctx.state(this).cached = x;
    }
    return y;
}

Tensor
LeakyReLU::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& cached = ctx.state(this).cached;
    SHREDDER_CHECK(!cached.empty(), "LeakyReLU::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == cached.shape(),
                   "LeakyReLU grad shape mismatch");
    Tensor grad_in = grad_out;
    float* g = grad_in.data();
    const float* x = cached.data();
    for (std::int64_t i = 0; i < grad_in.size(); ++i) {
        if (x[i] <= 0.0f) {
            g[i] *= slope_;
        }
    }
    return grad_in;
}

Shape
Softmax::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() == 2, "Softmax wants rank-2, got ",
                     in.to_string());
    return in;
}

Tensor
Softmax::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    Tensor y = ops::softmax_rows(x);
    if (ctx.retain_activations()) {
        ctx.state(this).cached = y;
    }
    return y;
}

Tensor
Softmax::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Tensor& y = ctx.state(this).cached;
    SHREDDER_CHECK(!y.empty(), "Softmax::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == y.shape(),
                   "Softmax grad shape mismatch");
    // dL/dx_i = y_i (g_i − Σ_j g_j y_j) per row.
    const std::int64_t rows = y.shape()[0];
    const std::int64_t cols = y.shape()[1];
    Tensor grad_in(y.shape());
    for (std::int64_t r = 0; r < rows; ++r) {
        const float* yr = y.data() + r * cols;
        const float* gr = grad_out.data() + r * cols;
        float* o = grad_in.data() + r * cols;
        double dot = 0.0;
        for (std::int64_t c = 0; c < cols; ++c) {
            dot += static_cast<double>(gr[c]) * yr[c];
        }
        for (std::int64_t c = 0; c < cols; ++c) {
            o[c] = yr[c] * (gr[c] - static_cast<float>(dot));
        }
    }
    return grad_in;
}

Crop2d::Crop2d(std::int64_t height, std::int64_t width)
    : height_(height), width_(width)
{
    SHREDDER_REQUIRE(height > 0 && width > 0, "bad crop size");
}

Shape
Crop2d::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() == 4, "Crop2d wants NCHW, got ",
                     in.to_string());
    SHREDDER_REQUIRE(in[2] >= height_ && in[3] >= width_, "crop ",
                     height_, "x", width_, " larger than input ",
                     in.to_string());
    return Shape({in[0], in[1], height_, width_});
}

Tensor
Crop2d::forward(const Tensor& x, ExecutionContext& ctx, Mode /*mode*/) const
{
    const Shape out_shape = output_shape(x.shape());
    ctx.state(this).in_shape = x.shape();
    const std::int64_t planes = x.shape()[0] * x.shape()[1];
    const std::int64_t ih = x.shape()[2], iw = x.shape()[3];
    Tensor y(out_shape);
    const float* xp = x.data();
    float* yp = y.data();
    for (std::int64_t p = 0; p < planes; ++p) {
        for (std::int64_t i = 0; i < height_; ++i) {
            const float* src = xp + (p * ih + i) * iw;
            float* dst = yp + (p * height_ + i) * width_;
            std::copy(src, src + width_, dst);
        }
    }
    return y;
}

Tensor
Crop2d::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Shape in_shape = ctx.state(this).in_shape;
    SHREDDER_CHECK(in_shape.rank() == 4, "Crop2d::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == output_shape(in_shape),
                   "Crop2d grad shape mismatch");
    const std::int64_t planes = in_shape[0] * in_shape[1];
    const std::int64_t ih = in_shape[2];
    const std::int64_t iw = in_shape[3];
    Tensor grad_in(in_shape);
    const float* gp = grad_out.data();
    float* op = grad_in.data();
    for (std::int64_t p = 0; p < planes; ++p) {
        for (std::int64_t i = 0; i < height_; ++i) {
            const float* src = gp + (p * height_ + i) * width_;
            float* dst = op + (p * ih + i) * iw;
            std::copy(src, src + width_, dst);
        }
    }
    return grad_in;
}

Shape
Upsample2x::output_shape(const Shape& in) const
{
    SHREDDER_REQUIRE(in.rank() == 4, "Upsample2x wants NCHW, got ",
                     in.to_string());
    return Shape({in[0], in[1], in[2] * 2, in[3] * 2});
}

Tensor
Upsample2x::forward(const Tensor& x, ExecutionContext& ctx,
                    Mode /*mode*/) const
{
    const Shape out_shape = output_shape(x.shape());
    ctx.state(this).in_shape = x.shape();
    const std::int64_t planes = x.shape()[0] * x.shape()[1];
    const std::int64_t ih = x.shape()[2], iw = x.shape()[3];
    Tensor y(out_shape);
    const float* xp = x.data();
    float* yp = y.data();
    for (std::int64_t p = 0; p < planes; ++p) {
        const float* in = xp + p * ih * iw;
        float* out = yp + p * ih * iw * 4;
        for (std::int64_t i = 0; i < ih; ++i) {
            for (std::int64_t j = 0; j < iw; ++j) {
                const float v = in[i * iw + j];
                const std::int64_t base = (2 * i) * (2 * iw) + 2 * j;
                out[base] = v;
                out[base + 1] = v;
                out[base + 2 * iw] = v;
                out[base + 2 * iw + 1] = v;
            }
        }
    }
    return y;
}

Tensor
Upsample2x::backward(const Tensor& grad_out, ExecutionContext& ctx)
{
    const Shape in_shape = ctx.state(this).in_shape;
    SHREDDER_CHECK(in_shape.rank() == 4,
                   "Upsample2x::backward without forward");
    SHREDDER_CHECK(grad_out.shape() == output_shape(in_shape),
                   "Upsample2x grad shape mismatch");
    const std::int64_t planes = in_shape[0] * in_shape[1];
    const std::int64_t ih = in_shape[2];
    const std::int64_t iw = in_shape[3];
    Tensor grad_in(in_shape);
    const float* gp = grad_out.data();
    float* op = grad_in.data();
    for (std::int64_t p = 0; p < planes; ++p) {
        const float* g = gp + p * ih * iw * 4;
        float* out = op + p * ih * iw;
        for (std::int64_t i = 0; i < ih; ++i) {
            for (std::int64_t j = 0; j < iw; ++j) {
                const std::int64_t base = (2 * i) * (2 * iw) + 2 * j;
                out[i * iw + j] = g[base] + g[base + 1] +
                                  g[base + 2 * iw] + g[base + 2 * iw + 1];
            }
        }
    }
    return grad_in;
}

}  // namespace nn
}  // namespace shredder
