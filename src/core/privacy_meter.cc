/**
 * @file
 * Implementation of the ex-vivo privacy measurement harness (§2.2, §3).
 */
#include "src/core/privacy_meter.h"

#include <algorithm>

#include "src/info/snr.h"
#include "src/nn/loss.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace core {

PrivacyMeter::PrivacyMeter(split::SplitModel& model,
                           const data::Dataset& test_set,
                           const MeterConfig& config)
    : model_(model), test_set_(test_set), config_(config)
{
    SHREDDER_REQUIRE(config.accuracy_samples > 0 && config.mi_samples > 0,
                     "meter needs positive sample counts");
}

PrivacyReport
PrivacyMeter::measure_clean()
{
    return measure_impl(nullptr);
}

PrivacyReport
PrivacyMeter::measure_fixed(const Tensor& noise)
{
    std::function<const Tensor&(Rng&)> sampler =
        [&noise](Rng&) -> const Tensor& { return noise; };
    return measure_impl(&sampler);
}

PrivacyReport
PrivacyMeter::measure_replay(const NoiseCollection& collection)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "measure_replay with empty collection");
    std::function<const Tensor&(Rng&)> sampler =
        [&collection](Rng& rng) -> const Tensor& {
        return collection.draw(rng).noise;
    };
    return measure_impl(&sampler);
}

PrivacyReport
PrivacyMeter::measure_sampling(const NoiseCollection& collection)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "measure_sampling with empty collection");
    const NoiseDistribution dist =
        NoiseDistribution::fit(collection, config_.family);
    return measure_distribution(dist);
}

PrivacyReport
PrivacyMeter::measure_distribution(const NoiseDistribution& dist)
{
    Tensor scratch;  // owns the last drawn tensor across calls
    std::function<const Tensor&(Rng&)> sampler =
        [&dist, &scratch](Rng& rng) -> const Tensor& {
        scratch = dist.sample(rng);
        return scratch;
    };
    return measure_impl(&sampler);
}

PrivacyReport
PrivacyMeter::measure_impl(
    const std::function<const Tensor&(Rng&)>* sampler)
{
    const std::int64_t total = std::min(
        test_set_.size(),
        std::max(config_.accuracy_samples, config_.mi_samples));
    const std::int64_t mi_total = std::min(config_.mi_samples, total);
    const std::int64_t acc_total =
        std::min(config_.accuracy_samples, total);

    const Shape img = test_set_.image_shape();
    const std::int64_t dx = img.numel();
    const Shape act_shape = model_.activation_shape(img);
    const std::int64_t da = act_shape.numel();  // batch dim is 1 here

    Tensor inputs(Shape({mi_total, dx}));
    Tensor transmitted(Shape({mi_total, da}));

    Rng rng(config_.seed);
    // Per-measurement context: the meter never touches model state.
    nn::ExecutionContext ctx(config_.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
    double correct_weighted = 0.0;
    std::int64_t acc_counted = 0;
    double signal_acc = 0.0, noise_var_acc = 0.0;
    std::int64_t snr_terms = 0;

    std::int64_t done = 0;
    while (done < total) {
        const std::int64_t count =
            std::min(config_.batch_size, total - done);
        const data::Batch batch =
            data::materialize(test_set_, done, count);

        const Tensor activation =
            model_.edge_forward(batch.images, ctx, nn::Mode::kEval);

        Tensor noisy = activation;
        if (sampler != nullptr) {
            float* p = noisy.data();
            for (std::int64_t i = 0; i < count; ++i) {
                const Tensor& n = (*sampler)(rng);
                SHREDDER_CHECK(n.size() == da,
                               "noise size mismatch in meter");
                const float* pn = n.data();
                float* row = p + i * da;
                for (std::int64_t j = 0; j < da; ++j) {
                    row[j] += pn[j];
                }
                noise_var_acc += n.variance();
                ++snr_terms;
            }
            signal_acc +=
                activation.mean_square() * static_cast<double>(count);
        }

        for (std::int64_t i = 0; i < count && done + i < mi_total; ++i) {
            const std::int64_t row = done + i;
            std::copy(batch.images.data() + i * dx,
                      batch.images.data() + (i + 1) * dx,
                      inputs.data() + row * dx);
            std::copy(noisy.data() + i * da, noisy.data() + (i + 1) * da,
                      transmitted.data() + row * da);
        }

        if (done < acc_total) {
            const Tensor logits =
                model_.cloud_forward(noisy, ctx, nn::Mode::kEval);
            correct_weighted += nn::accuracy(logits, batch.labels) *
                                static_cast<double>(count);
            acc_counted += count;
        }
        done += count;
    }

    PrivacyReport report;
    const info::DimwiseMiEstimator estimator(config_.mi);
    report.mi_bits = estimator.estimate(inputs, transmitted);
    report.ex_vivo = info::ex_vivo_privacy(report.mi_bits);
    report.accuracy =
        acc_counted > 0
            ? correct_weighted / static_cast<double>(acc_counted)
            : 0.0;
    if (snr_terms > 0 && noise_var_acc > 0.0) {
        const double snr =
            (signal_acc / static_cast<double>(snr_terms)) /
            (noise_var_acc / static_cast<double>(snr_terms));
        report.in_vivo = snr > 0.0 ? 1.0 / snr : 0.0;
    }
    report.samples = mi_total;
    return report;
}

}  // namespace core
}  // namespace shredder
