/**
 * @file
 * Implementation of the ex-vivo privacy measurement harness (§2.2, §3).
 */
#include "src/core/privacy_meter.h"

#include <algorithm>

#include "src/info/snr.h"
#include "src/nn/loss.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace core {

PrivacyMeter::PrivacyMeter(split::SplitModel& model,
                           const data::Dataset& test_set,
                           const MeterConfig& config)
    : model_(model), test_set_(test_set), config_(config)
{
    SHREDDER_REQUIRE(config.accuracy_samples > 0 && config.mi_samples > 0,
                     "meter needs positive sample counts");
}

PrivacyReport
PrivacyMeter::measure_clean()
{
    return measure_impl(runtime::NoNoisePolicy());
}

PrivacyReport
PrivacyMeter::measure_fixed(const Tensor& noise)
{
    return measure_impl(runtime::FixedNoisePolicy(noise));
}

PrivacyReport
PrivacyMeter::measure_replay(const NoiseCollection& collection)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "measure_replay with empty collection");
    return measure_impl(runtime::ReplayPolicy(collection, config_.seed));
}

PrivacyReport
PrivacyMeter::measure_sampling(const NoiseCollection& collection)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "measure_sampling with empty collection");
    const NoiseDistribution dist =
        NoiseDistribution::fit(collection, config_.family);
    return measure_distribution(dist);
}

PrivacyReport
PrivacyMeter::measure_distribution(const NoiseDistribution& dist)
{
    return measure_impl(runtime::SamplePolicy(dist, config_.seed));
}

PrivacyReport
PrivacyMeter::measure_policy(const runtime::NoisePolicy& policy)
{
    return measure_impl(policy);
}

PrivacyReport
PrivacyMeter::measure_impl(const runtime::NoisePolicy& policy)
{
    const std::int64_t total = std::min(
        test_set_.size(),
        std::max(config_.accuracy_samples, config_.mi_samples));
    const std::int64_t mi_total = std::min(config_.mi_samples, total);
    const std::int64_t acc_total =
        std::min(config_.accuracy_samples, total);

    const Shape img = test_set_.image_shape();
    const std::int64_t dx = img.numel();
    const Shape act_shape = model_.activation_shape(img);
    const std::int64_t da = act_shape.numel();  // batch dim is 1 here

    Tensor inputs(Shape({mi_total, dx}));
    Tensor transmitted(Shape({mi_total, da}));

    // Per-measurement context: the meter never touches model state.
    nn::ExecutionContext ctx(config_.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
    double correct_weighted = 0.0;
    std::int64_t acc_counted = 0;
    double signal_acc = 0.0, noise_var_acc = 0.0;
    std::int64_t snr_terms = 0;

    Tensor act_row(Shape({da}));    // one query's activation
    Tensor noise_row(Shape({da}));  // its applied noise (noisy − clean)

    std::int64_t done = 0;
    while (done < total) {
        const std::int64_t count =
            std::min(config_.batch_size, total - done);
        const data::Batch batch =
            data::materialize(test_set_, done, count);

        const Tensor activation =
            model_.edge_forward(batch.images, ctx, nn::Mode::kEval);

        // Apply the policy row by row, exactly as a server applies it
        // per request: query `done + i` uses request id `done + i`,
        // through the same `apply_into` hot path `execute_batch` uses
        // (the row already holds the activation copy).
        Tensor noisy = activation;
        float* p = noisy.data();
        const float* pa = activation.data();
        for (std::int64_t i = 0; i < count; ++i) {
            const auto id = static_cast<std::uint64_t>(done + i);
            std::copy(pa + i * da, pa + (i + 1) * da, act_row.data());
            policy.apply_into(act_row, id, p + i * da);
            for (std::int64_t j = 0; j < da; ++j) {
                noise_row.data()[j] = p[i * da + j] - act_row[j];
            }
            noise_var_acc += noise_row.variance();
            ++snr_terms;
        }
        signal_acc +=
            activation.mean_square() * static_cast<double>(count);

        for (std::int64_t i = 0; i < count && done + i < mi_total; ++i) {
            const std::int64_t row = done + i;
            std::copy(batch.images.data() + i * dx,
                      batch.images.data() + (i + 1) * dx,
                      inputs.data() + row * dx);
            std::copy(noisy.data() + i * da, noisy.data() + (i + 1) * da,
                      transmitted.data() + row * da);
        }

        if (done < acc_total) {
            const Tensor logits =
                model_.cloud_forward(noisy, ctx, nn::Mode::kEval);
            correct_weighted += nn::accuracy(logits, batch.labels) *
                                static_cast<double>(count);
            acc_counted += count;
        }
        done += count;
    }

    PrivacyReport report;
    const info::DimwiseMiEstimator estimator(config_.mi);
    report.mi_bits = estimator.estimate(inputs, transmitted);
    report.ex_vivo = info::ex_vivo_privacy(report.mi_bits);
    report.accuracy =
        acc_counted > 0
            ? correct_weighted / static_cast<double>(acc_counted)
            : 0.0;
    if (snr_terms > 0 && noise_var_acc > 0.0) {
        const double snr =
            (signal_acc / static_cast<double>(snr_terms)) /
            (noise_var_acc / static_cast<double>(snr_terms));
        report.in_vivo = snr > 0.0 ? 1.0 / snr : 0.0;
    }
    report.samples = mi_total;
    return report;
}

}  // namespace core
}  // namespace shredder
