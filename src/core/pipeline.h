/**
 * @file
 * End-to-end Shredder pipeline: pre-trained model → cut → repeated
 * noise training (collecting the noise distribution) → deployment-mode
 * measurement. This is the orchestration the paper's Table 1 runs for
 * each benchmark network.
 *
 * Deployment modes are measured through `runtime::NoisePolicy` objects
 * (`ReplayPolicy`, `SamplePolicy`) — the same abstraction the serving
 * path (`runtime::ServingEngine`) executes — so the reported privacy
 * describes exactly the mechanism a server built from the resulting
 * collection would apply.
 */
#ifndef SHREDDER_CORE_PIPELINE_H
#define SHREDDER_CORE_PIPELINE_H

#include <cstdint>
#include <string>

#include "src/core/noise_collection.h"
#include "src/core/noise_trainer.h"
#include "src/core/privacy_meter.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"

namespace shredder {
namespace core {

/** Pipeline knobs. */
struct PipelineConfig
{
    /** How many noise tensors to train (the distribution's samples). */
    int noise_samples = 3;
    NoiseTrainConfig train;
    MeterConfig meter;
    /**
     * Also measure the distribution-sampling extension (fresh noise
     * drawn from the fitted per-element distribution each query) in
     * addition to the paper's replay deployment.
     */
    bool measure_distribution = true;
    /**
     * Also measure the shuffling extension: per-request permutation
     * alone (`ShufflePolicy`) and composed with the additive modes
     * (shuffle∘replay always; shuffle∘sample when
     * `measure_distribution` is also on). Adds the mode×shuffle rows
     * to the Table 1 matrix.
     */
    bool measure_shuffle = true;
    bool verbose = false;
};

/** Everything Table 1 reports for one network. */
struct PipelineResult
{
    std::string name;
    double original_mi = 0.0;       ///< Î(x; a), no noise.
    double shredded_mi = 0.0;       ///< Î(x; a′), sampled noise.
    double mi_loss_pct = 0.0;       ///< 100·(1 − shredded/original).
    double baseline_accuracy = 0.0; ///< Clean accuracy.
    double noisy_accuracy = 0.0;    ///< Accuracy through the noise.
    double accuracy_loss_pct = 0.0; ///< Percentage-point drop.
    double params_ratio_pct = 0.0;  ///< Noise params / model params.
    double epochs = 0.0;            ///< Noise-training epochs (mean).
    NoiseCollection collection;     ///< The learned distribution.
    /**
     * Extension metrics: fresh per-query sampling from the fitted
     * distribution (true information destruction; see
     * noise_distribution.h). Zero when measure_distribution is off.
     */
    double distribution_mi = 0.0;
    double distribution_accuracy = 0.0;
    /**
     * Shuffling-extension metrics (zero when `measure_shuffle` is
     * off): plain per-request permutation, and the composed chains
     * shuffle∘replay and shuffle∘sample — each measured through the
     * same `ComposedPolicy` objects a server would execute.
     * `shuffle_accuracy` is the *cloud-visible* accuracy of the
     * permuted activation (a trusted cloud holding the seed inverts
     * the permutation first and loses nothing; see
     * `ShufflePolicy::invert`). `shuffle_sample_*` additionally
     * requires `measure_distribution`.
     */
    double shuffle_mi = 0.0;
    double shuffle_accuracy = 0.0;
    double shuffle_replay_mi = 0.0;
    double shuffle_replay_accuracy = 0.0;
    double shuffle_sample_mi = 0.0;
    double shuffle_sample_accuracy = 0.0;
};

/**
 * Run the full pipeline on a pre-trained network.
 *
 * @param name       Label copied into the result.
 * @param net        Pre-trained network (weights are frozen inside).
 * @param train_set  Data for noise learning.
 * @param test_set   Held-out data for measurement.
 * @param cut        Cutting-point layer index.
 * @param config     Pipeline knobs.
 */
PipelineResult run_pipeline(const std::string& name, nn::Sequential& net,
                            const data::Dataset& train_set,
                            const data::Dataset& test_set,
                            std::int64_t cut,
                            const PipelineConfig& config);

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_PIPELINE_H
