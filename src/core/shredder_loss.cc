/**
 * @file
 * Implementation of the Shredder loss and its privacy terms (Eq. 2–3).
 */
#include "src/core/shredder_loss.h"

#include <cmath>

#include "src/runtime/logging.h"

namespace shredder {
namespace core {

ShredderLoss::ShredderLoss(PrivacyTerm term, float lambda)
    : term_(term), lambda_(lambda)
{
    SHREDDER_REQUIRE(lambda >= 0.0f, "lambda must be >= 0, got ", lambda);
}

void
ShredderLoss::set_lambda(float lambda)
{
    SHREDDER_REQUIRE(lambda >= 0.0f, "lambda must be >= 0, got ", lambda);
    lambda_ = lambda;
}

ShredderLossValue
ShredderLoss::compute(const Tensor& logits,
                      const std::vector<std::int64_t>& labels,
                      const Tensor& noise) const
{
    ShredderLossValue out;
    nn::LossResult ce = ce_.compute(logits, labels);
    out.cross_entropy = ce.value;
    out.logits_grad = std::move(ce.grad);

    switch (term_) {
      case PrivacyTerm::kNone:
        out.privacy = 0.0;
        break;
      case PrivacyTerm::kL1Expansion:
        out.privacy = -static_cast<double>(lambda_) * noise.abs_sum();
        break;
      case PrivacyTerm::kInverseVariance: {
        const double var = noise.variance();
        out.privacy = var > 0.0
                          ? static_cast<double>(lambda_) / var
                          : 0.0;
        break;
      }
    }
    out.total = out.cross_entropy + out.privacy;
    return out;
}

void
ShredderLoss::add_privacy_grad(const Tensor& noise,
                               Tensor& noise_grad) const
{
    SHREDDER_CHECK(noise.shape() == noise_grad.shape(),
                   "noise/grad shape mismatch");
    if (term_ == PrivacyTerm::kNone || lambda_ == 0.0f) {
        return;
    }
    const std::int64_t n = noise.size();
    const float* pn = noise.data();
    float* pg = noise_grad.data();

    if (term_ == PrivacyTerm::kL1Expansion) {
        // d(−λΣ|nᵢ|)/dnᵢ = −λ·sign(nᵢ): pushes magnitudes up — the
        // "opposite of weight decay" update of paper Eq. 3.
        for (std::int64_t i = 0; i < n; ++i) {
            const float sign =
                pn[i] > 0.0f ? 1.0f : (pn[i] < 0.0f ? -1.0f : 0.0f);
            pg[i] -= lambda_ * sign;
        }
        return;
    }

    // kInverseVariance — Eq. 2:
    // d(λ/σ²)/dnᵢ = −λ·σ⁻⁴·dσ²/dnᵢ,  dσ²/dnᵢ = 2(nᵢ−µ)/N.
    const double var = noise.variance();
    if (var <= 1e-12) {
        return;
    }
    const double mean = noise.mean();
    const double coeff = -2.0 * static_cast<double>(lambda_) /
                         (var * var * static_cast<double>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        pg[i] += static_cast<float>(coeff * (pn[i] - mean));
    }
}

}  // namespace core
}  // namespace shredder
