/**
 * @file
 * Implementation of the trainable additive noise tensor (§2.4).
 */
#include "src/core/noise_tensor.h"

#include "src/runtime/logging.h"

namespace shredder {
namespace core {

NoiseTensor::NoiseTensor(const Shape& sample_shape, const NoiseInit& init)
{
    Rng rng(init.seed);
    param_ = nn::Parameter(
        "shredder.noise",
        Tensor::laplace(sample_shape, rng, init.location, init.scale));
}

NoiseTensor::NoiseTensor(Tensor value)
{
    param_ = nn::Parameter("shredder.noise", std::move(value));
}

Tensor
NoiseTensor::apply(const Tensor& batch_activation) const
{
    const std::int64_t per_sample = param_.value.size();
    SHREDDER_REQUIRE(batch_activation.shape().rank() >= 1 &&
                         batch_activation.size() % per_sample == 0,
                     "activation ", batch_activation.shape().to_string(),
                     " incompatible with noise of ", per_sample,
                     " elements");
    const std::int64_t batch = batch_activation.size() / per_sample;
    Tensor out = batch_activation;
    float* po = out.data();
    const float* pn = param_.value.data();
    for (std::int64_t n = 0; n < batch; ++n) {
        float* row = po + n * per_sample;
        for (std::int64_t i = 0; i < per_sample; ++i) {
            row[i] += pn[i];
        }
    }
    return out;
}

void
NoiseTensor::accumulate_grad(const Tensor& batch_grad)
{
    const std::int64_t per_sample = param_.value.size();
    SHREDDER_REQUIRE(batch_grad.size() % per_sample == 0,
                     "gradient incompatible with noise shape");
    const std::int64_t batch = batch_grad.size() / per_sample;
    float* pg = param_.grad.data();
    const float* pb = batch_grad.data();
    for (std::int64_t n = 0; n < batch; ++n) {
        const float* row = pb + n * per_sample;
        for (std::int64_t i = 0; i < per_sample; ++i) {
            pg[i] += row[i];
        }
    }
}

}  // namespace core
}  // namespace shredder
