/**
 * @file
 * Shredder's noise-training loss (paper §2.4).
 *
 * Two formulations are implemented:
 *
 *   Eq. 2:  L = CE(R(a+n), y) + λ · 1/σ²(n)     (inverse variance)
 *   Eq. 3:  L = CE(R(a+n), y) − λ · Σᵢ|nᵢ|      (anti-decay, the one
 *                                                the paper trains with)
 *
 * The cross-entropy part back-propagates through the remote network R;
 * the privacy term contributes directly to ∂L/∂n.
 */
#ifndef SHREDDER_CORE_SHREDDER_LOSS_H
#define SHREDDER_CORE_SHREDDER_LOSS_H

#include <cstdint>
#include <vector>

#include "src/nn/loss.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace core {

/** Which privacy regularizer the loss applies. */
enum class PrivacyTerm {
    kNone,             ///< Plain cross-entropy (the λ=0 / "regular" run).
    kL1Expansion,      ///< Eq. 3: −λΣ|nᵢ| (default).
    kInverseVariance,  ///< Eq. 2: +λ/σ²(n).
};

/** Decomposed loss value. */
struct ShredderLossValue
{
    double total = 0.0;
    double cross_entropy = 0.0;
    double privacy = 0.0;  ///< The privacy term's contribution.
    Tensor logits_grad;    ///< Seed for backward through R.
};

/** See file comment. */
class ShredderLoss
{
  public:
    /**
     * @param term     Privacy regularizer variant.
     * @param lambda   The privacy/accuracy knob λ (≥ 0).
     */
    ShredderLoss(PrivacyTerm term, float lambda);

    /** Loss value and the cross-entropy gradient w.r.t. the logits. */
    ShredderLossValue compute(const Tensor& logits,
                              const std::vector<std::int64_t>& labels,
                              const Tensor& noise) const;

    /**
     * Add the privacy term's gradient ∂(privacy)/∂n into `noise_grad`
     * (same shape as the noise).
     */
    void add_privacy_grad(const Tensor& noise, Tensor& noise_grad) const;

    PrivacyTerm term() const { return term_; }
    float lambda() const { return lambda_; }

    /** Update λ (used by the decay controller). */
    void set_lambda(float lambda);

  private:
    PrivacyTerm term_;
    float lambda_;
    nn::CrossEntropyLoss ce_;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_SHREDDER_LOSS_H
