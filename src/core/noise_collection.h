/**
 * @file
 * Noise-distribution sampling (paper §2.5).
 *
 * The noise training run is repeated from independent initializations;
 * each converged tensor is a *sample from a distribution of noise
 * tensors* with similar accuracy and noise levels. The collection
 * stores those samples, and at inference time one is drawn per query —
 * no training happens in the deployment path.
 */
#ifndef SHREDDER_CORE_NOISE_COLLECTION_H
#define SHREDDER_CORE_NOISE_COLLECTION_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace core {

/** One converged noise tensor plus its training metadata. */
struct NoiseSample
{
    Tensor noise;
    double in_vivo_privacy = 0.0;  ///< 1/SNR when training finished.
    double train_accuracy = 0.0;   ///< Batch accuracy when finished.
};

/** A set of interchangeable noise samples — the learned distribution. */
class NoiseCollection
{
  public:
    NoiseCollection() = default;

    /** Add one converged sample. */
    void add(NoiseSample sample);

    /** Number of stored samples. */
    std::int64_t size() const
    {
        return static_cast<std::int64_t>(samples_.size());
    }

    bool empty() const { return samples_.empty(); }

    /** Borrow sample `i`. */
    const NoiseSample& get(std::int64_t i) const;

    /** Shape of the stored noise tensors. */
    const Shape& noise_shape() const;

    /** Draw one sample uniformly at random (the inference-time path). */
    const NoiseSample& draw(Rng& rng) const;

    /** Mean of stored in-vivo privacy values. */
    double mean_in_vivo_privacy() const;

    /** Persist to a binary file. Fatal on I/O failure. */
    void save(const std::string& path) const;

    /** Load a collection persisted by `save`. Fatal on corruption. */
    static NoiseCollection load(const std::string& path);

    /**
     * Write to a binary stream (`SCOL` section — byte-identical to the
     * file format, so collections embed directly in deployment
     * bundles).
     */
    void save(std::ostream& os) const;

    /**
     * Read a collection written by the stream `save`.
     * @throws SerializeError on malformed input (never terminates —
     *         bundles cross a trust boundary).
     */
    static NoiseCollection load(std::istream& is);

  private:
    std::vector<NoiseSample> samples_;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_NOISE_COLLECTION_H
