/**
 * @file
 * Implementation of the λ schedule (decay past the in-vivo target).
 */
#include "src/core/lambda_controller.h"

#include <algorithm>

#include "src/runtime/logging.h"

namespace shredder {
namespace core {

LambdaController::LambdaController(const LambdaSchedule& schedule)
    : schedule_(schedule), lambda_(schedule.initial_lambda)
{
    SHREDDER_REQUIRE(schedule.initial_lambda >= 0.0f,
                     "initial lambda must be >= 0");
    SHREDDER_REQUIRE(schedule.decay > 0.0f && schedule.decay < 1.0f,
                     "lambda decay must be in (0, 1)");
    SHREDDER_REQUIRE(schedule.patience >= 1, "patience must be >= 1");
}

float
LambdaController::observe(double in_vivo_privacy)
{
    if (schedule_.privacy_target <= 0.0) {
        return lambda_;  // decay disabled
    }
    if (in_vivo_privacy >= schedule_.privacy_target) {
        if (++above_streak_ >= schedule_.patience) {
            const float next =
                std::max(schedule_.min_lambda, lambda_ * schedule_.decay);
            if (next < lambda_) {
                lambda_ = next;
                ++decays_;
            }
            above_streak_ = 0;
        }
    } else {
        above_streak_ = 0;
    }
    return lambda_;
}

}  // namespace core
}  // namespace shredder
