/**
 * @file
 * The fitted noise distribution (paper §2.5).
 *
 * After enough converged noise tensors are collected, Shredder has
 * "the distribution for the noise tensor" and each inference samples
 * from it. This class fits an independent per-element distribution
 * (Laplace by default, matching the initialization family) to a
 * `NoiseCollection` and draws fresh tensors from it.
 *
 * The distinction matters for privacy: re-using one *fixed* converged
 * tensor is a deterministic, invertible transform of the activation —
 * it cannot reduce true mutual information. Only the per-query
 * randomness of sampling destroys information, which is exactly why
 * the paper's deployment phase samples rather than replays.
 */
#ifndef SHREDDER_CORE_NOISE_DISTRIBUTION_H
#define SHREDDER_CORE_NOISE_DISTRIBUTION_H

#include <iosfwd>
#include <string>

#include "src/core/noise_collection.h"
#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace core {

/** Parametric family of the fitted per-element distribution. */
enum class NoiseFamily {
    kLaplace,   ///< location = mean, scale = mean |n − µ| (MLE).
    kGaussian,  ///< location = mean, scale = stddev.
};

/** See file comment. */
class NoiseDistribution
{
  public:
    /**
     * Fit an independent per-element distribution to the collection.
     *
     * @param collection  ≥ 1 converged noise tensors (≥ 2 for a
     *                    non-degenerate scale).
     * @param family      Parametric family.
     * @param scale_floor Minimum per-element scale, as a fraction of
     *                    the mean |location| — keeps single-sample or
     *                    degenerate fits from collapsing to a
     *                    deterministic (privacy-free) transform.
     */
    static NoiseDistribution fit(const NoiseCollection& collection,
                                 NoiseFamily family = NoiseFamily::kLaplace,
                                 float scale_floor = 0.05f);

    /** Draw one fresh noise tensor. */
    Tensor sample(Rng& rng) const;

    /** Per-element location parameters. */
    const Tensor& location() const { return location_; }

    /** Per-element scale parameters. */
    const Tensor& scale() const { return scale_; }

    NoiseFamily family() const { return family_; }

    /** Mean noise variance implied by the fit (for SNR accounting). */
    double mean_variance() const;

    // -- Persistence (the deployable artifact, paper §2.5) ---------------
    //
    // The fitted distribution is what the paper actually ships to edge
    // devices: training happens offline, deployment only samples. The
    // `SDST` codec (magic, family, location tensor, scale tensor) makes
    // the fit a first-class on-disk artifact — standalone via the path
    // API, or embedded in a deployment bundle via the stream API.

    /** Write the fit to a binary stream (`SDST` section). */
    void save(std::ostream& os) const;

    /**
     * Read a fit written by the stream `save`.
     * @throws SerializeError on malformed input (never terminates —
     *         bundles cross a trust boundary).
     */
    static NoiseDistribution load(std::istream& is);

    /** Persist to a binary file. Fatal on I/O failure. */
    void save(const std::string& path) const;

    /** Load from a binary file. Fatal on missing/corrupt file. */
    static NoiseDistribution load(const std::string& path);

  private:
    NoiseDistribution(NoiseFamily family, Tensor location, Tensor scale);

    NoiseFamily family_;
    Tensor location_;
    Tensor scale_;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_NOISE_DISTRIBUTION_H
