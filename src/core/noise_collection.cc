/**
 * @file
 * Implementation of the stored noise-sample collection (§2.5).
 */
#include "src/core/noise_collection.h"

#include <fstream>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace core {

namespace {

constexpr std::uint32_t kMagic = 0x4c4f4353;  // 'SCOL'

}  // namespace

void
NoiseCollection::add(NoiseSample sample)
{
    if (!samples_.empty()) {
        SHREDDER_REQUIRE(sample.noise.shape() ==
                             samples_.front().noise.shape(),
                         "noise sample shape mismatch: ",
                         sample.noise.shape().to_string(), " vs ",
                         samples_.front().noise.shape().to_string());
    }
    samples_.push_back(std::move(sample));
}

const NoiseSample&
NoiseCollection::get(std::int64_t i) const
{
    SHREDDER_CHECK(i >= 0 && i < size(), "sample index ", i, " out of ",
                   size());
    return samples_[static_cast<std::size_t>(i)];
}

const Shape&
NoiseCollection::noise_shape() const
{
    SHREDDER_CHECK(!samples_.empty(), "noise_shape of empty collection");
    return samples_.front().noise.shape();
}

const NoiseSample&
NoiseCollection::draw(Rng& rng) const
{
    SHREDDER_REQUIRE(!samples_.empty(), "draw from empty noise collection");
    return samples_[static_cast<std::size_t>(rng.randint(0, size() - 1))];
}

double
NoiseCollection::mean_in_vivo_privacy() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double s = 0.0;
    for (const auto& sample : samples_) {
        s += sample.in_vivo_privacy;
    }
    return s / static_cast<double>(samples_.size());
}

void
NoiseCollection::save(std::ostream& os) const
{
    wire::write_u32(os, kMagic);
    wire::write_u32(os, static_cast<std::uint32_t>(samples_.size()));
    for (const auto& s : samples_) {
        write_tensor(os, s.noise);
        wire::write_f64(os, s.in_vivo_privacy);
        wire::write_f64(os, s.train_accuracy);
    }
}

NoiseCollection
NoiseCollection::load(std::istream& is)
{
    wire::expect_magic(is, kMagic, "noise collection");
    const std::uint32_t count = wire::read_u32(is);
    if (count > (1u << 20)) {
        throw SerializeError("implausible noise-collection size");
    }
    NoiseCollection out;
    for (std::uint32_t i = 0; i < count; ++i) {
        NoiseSample s;
        s.noise = read_tensor_checked(is);
        s.in_vivo_privacy = wire::read_f64(is);
        s.train_accuracy = wire::read_f64(is);
        // Validate here (throwing) rather than relying on add()'s
        // fatal check: a malformed collection must fail the load, not
        // the process.
        if (!out.samples_.empty() &&
            !(s.noise.shape() == out.samples_.front().noise.shape())) {
            throw SerializeError(
                "noise sample shape mismatch in collection stream");
        }
        out.add(std::move(s));
    }
    return out;
}

void
NoiseCollection::save(const std::string& path) const
{
    std::ofstream os(path, std::ios::binary);
    SHREDDER_REQUIRE(os.good(), "cannot open for write: ", path);
    save(static_cast<std::ostream&>(os));
    SHREDDER_REQUIRE(os.good(), "write failed: ", path);
}

NoiseCollection
NoiseCollection::load(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    SHREDDER_REQUIRE(is.good(), "cannot open: ", path);
    try {
        return load(static_cast<std::istream&>(is));
    } catch (const SerializeError& e) {
        SHREDDER_FATAL("noise collection file ", path, ": ", e.what());
    }
}

}  // namespace core
}  // namespace shredder
