/**
 * @file
 * Implementation of the stored noise-sample collection (§2.5).
 */
#include "src/core/noise_collection.h"

#include <fstream>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace core {

namespace {

constexpr std::uint32_t kMagic = 0x4c4f4353;  // 'SCOL'

}  // namespace

void
NoiseCollection::add(NoiseSample sample)
{
    if (!samples_.empty()) {
        SHREDDER_REQUIRE(sample.noise.shape() ==
                             samples_.front().noise.shape(),
                         "noise sample shape mismatch: ",
                         sample.noise.shape().to_string(), " vs ",
                         samples_.front().noise.shape().to_string());
    }
    samples_.push_back(std::move(sample));
}

const NoiseSample&
NoiseCollection::get(std::int64_t i) const
{
    SHREDDER_CHECK(i >= 0 && i < size(), "sample index ", i, " out of ",
                   size());
    return samples_[static_cast<std::size_t>(i)];
}

const Shape&
NoiseCollection::noise_shape() const
{
    SHREDDER_CHECK(!samples_.empty(), "noise_shape of empty collection");
    return samples_.front().noise.shape();
}

const NoiseSample&
NoiseCollection::draw(Rng& rng) const
{
    SHREDDER_REQUIRE(!samples_.empty(), "draw from empty noise collection");
    return samples_[static_cast<std::size_t>(rng.randint(0, size() - 1))];
}

double
NoiseCollection::mean_in_vivo_privacy() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double s = 0.0;
    for (const auto& sample : samples_) {
        s += sample.in_vivo_privacy;
    }
    return s / static_cast<double>(samples_.size());
}

void
NoiseCollection::save(const std::string& path) const
{
    std::ofstream os(path, std::ios::binary);
    SHREDDER_REQUIRE(os.good(), "cannot open for write: ", path);
    os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    const auto count = static_cast<std::uint32_t>(samples_.size());
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& s : samples_) {
        write_tensor(os, s.noise);
        os.write(reinterpret_cast<const char*>(&s.in_vivo_privacy),
                 sizeof(s.in_vivo_privacy));
        os.write(reinterpret_cast<const char*>(&s.train_accuracy),
                 sizeof(s.train_accuracy));
    }
    SHREDDER_REQUIRE(os.good(), "write failed: ", path);
}

NoiseCollection
NoiseCollection::load(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    SHREDDER_REQUIRE(is.good(), "cannot open: ", path);
    std::uint32_t magic = 0;
    is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    SHREDDER_REQUIRE(magic == kMagic, "bad collection magic in ", path);
    std::uint32_t count = 0;
    is.read(reinterpret_cast<char*>(&count), sizeof(count));
    NoiseCollection out;
    for (std::uint32_t i = 0; i < count; ++i) {
        NoiseSample s;
        s.noise = read_tensor(is);
        is.read(reinterpret_cast<char*>(&s.in_vivo_privacy),
                sizeof(s.in_vivo_privacy));
        is.read(reinterpret_cast<char*>(&s.train_accuracy),
                sizeof(s.train_accuracy));
        SHREDDER_REQUIRE(static_cast<bool>(is), "truncated collection: ",
                         path);
        out.add(std::move(s));
    }
    return out;
}

}  // namespace core
}  // namespace shredder
