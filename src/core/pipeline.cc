/**
 * @file
 * Implementation of the end-to-end Table 1 pipeline.
 */
#include "src/core/pipeline.h"

#include <memory>

#include "src/runtime/logging.h"
#include "src/runtime/noise_policy.h"
#include "src/split/split_model.h"

namespace shredder {
namespace core {

PipelineResult
run_pipeline(const std::string& name, nn::Sequential& net,
             const data::Dataset& train_set, const data::Dataset& test_set,
             std::int64_t cut, const PipelineConfig& config)
{
    SHREDDER_REQUIRE(config.noise_samples >= 1,
                     "pipeline needs >= 1 noise sample");
    split::SplitModel model(net, cut);

    PipelineResult result;
    result.name = name;

    // Baseline (original execution): accuracy and Î(x; a).
    PrivacyMeter meter(model, test_set, config.meter);
    const PrivacyReport clean = meter.measure_clean();
    result.original_mi = clean.mi_bits;
    result.baseline_accuracy = clean.accuracy;

    // Learn the noise distribution: repeat training from independent
    // initializations (paper §2.5) and collect the converged tensors.
    double epochs_total = 0.0;
    for (int s = 0; s < config.noise_samples; ++s) {
        NoiseTrainConfig tc = config.train;
        tc.seed = config.train.seed + static_cast<std::uint64_t>(s) * 101;
        NoiseTrainer trainer(model, train_set, tc);
        NoiseTrainResult tr = trainer.train();
        epochs_total += tr.epochs;

        NoiseSample sample;
        sample.noise = std::move(tr.noise);
        sample.in_vivo_privacy = tr.final_in_vivo;
        sample.train_accuracy = tr.final_batch_accuracy;
        result.collection.add(std::move(sample));
        if (config.verbose) {
            inform("pipeline '", name, "': noise sample ", s + 1, "/",
                   config.noise_samples, " trained (1/SNR=",
                   result.collection.get(s).in_vivo_privacy, ")");
        }
    }
    result.epochs = epochs_total / config.noise_samples;

    // Deployment measurement — the paper's §2.5 phase: each query
    // draws one of the pre-trained noise tensors ("we just sample
    // from pre-trained noises"). Measured through the very policy
    // objects a `ServingEngine` endpoint would execute, so what Table
    // 1 reports is bit-for-bit what a server with this collection and
    // seed serves.
    const runtime::ReplayPolicy replay_policy(result.collection,
                                              config.meter.seed);
    const PrivacyReport noisy = meter.measure_policy(replay_policy);
    result.shredded_mi = noisy.mi_bits;
    result.noisy_accuracy = noisy.accuracy;
    if (config.measure_distribution) {
        const runtime::SamplePolicy sample_policy(
            result.collection, config.meter.family, config.meter.seed);
        const PrivacyReport dist = meter.measure_policy(sample_policy);
        result.distribution_mi = dist.mi_bits;
        result.distribution_accuracy = dist.accuracy;
    }
    if (config.measure_shuffle) {
        // The mode×shuffle rows of the matrix. The shuffle stage gets
        // its own root seed (distinct from the additive stages — see
        // the ComposedPolicy seed-derivation contract) and is shared
        // across the composed chains, like a server would share it.
        const auto shuffle = std::make_shared<runtime::ShufflePolicy>(
            config.meter.seed ^ 0x5AFEC0DEULL);
        const PrivacyReport shuffled = meter.measure_policy(*shuffle);
        result.shuffle_mi = shuffled.mi_bits;
        result.shuffle_accuracy = shuffled.accuracy;

        const auto replay_stage = std::make_shared<runtime::ReplayPolicy>(
            result.collection, config.meter.seed);
        const runtime::ComposedPolicy shuffle_replay({replay_stage,
                                                      shuffle});
        const PrivacyReport sr = meter.measure_policy(shuffle_replay);
        result.shuffle_replay_mi = sr.mi_bits;
        result.shuffle_replay_accuracy = sr.accuracy;

        if (config.measure_distribution) {
            const auto sample_stage =
                std::make_shared<runtime::SamplePolicy>(
                    result.collection, config.meter.family,
                    config.meter.seed);
            const runtime::ComposedPolicy shuffle_sample({sample_stage,
                                                          shuffle});
            const PrivacyReport ss = meter.measure_policy(shuffle_sample);
            result.shuffle_sample_mi = ss.mi_bits;
            result.shuffle_sample_accuracy = ss.accuracy;
        }
    }
    result.mi_loss_pct =
        result.original_mi > 0.0
            ? 100.0 * (1.0 - result.shredded_mi / result.original_mi)
            : 0.0;
    result.accuracy_loss_pct =
        100.0 * (result.baseline_accuracy - result.noisy_accuracy);

    const std::int64_t noise_params =
        result.collection.noise_shape().numel();
    const std::int64_t model_params = net.num_parameters();
    result.params_ratio_pct =
        model_params > 0 ? 100.0 * static_cast<double>(noise_params) /
                               static_cast<double>(model_params)
                         : 0.0;
    return result;
}

}  // namespace core
}  // namespace shredder
