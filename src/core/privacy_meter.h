/**
 * @file
 * Ex-vivo privacy measurement harness (paper §2.2, §3).
 *
 * Collects (input, transmitted-activation) sample pairs over a test
 * set, estimates the mutual information between them with the
 * dimension-wise estimator (DESIGN.md §2), and measures end-to-end
 * accuracy. Four modes:
 *
 *  - clean     : no noise (the paper's "original execution");
 *  - fixed     : one converged tensor replayed on every query —
 *                deterministic, so true MI barely moves (this is why
 *                the paper's §2.5 sampling phase exists);
 *  - replay    : per-query draw of a *stored* tensor from the
 *                collection (ablation D3);
 *  - sampling  : per-query draw from the *fitted* noise distribution —
 *                the paper's deployment path.
 *
 * Every mode is measured THROUGH a `runtime::NoisePolicy` — the same
 * objects the serving path executes (`InferenceServer`,
 * `ServingEngine`). Query `q` of a pass applies the policy under
 * request id `q`, so a server configured with the same policy (same
 * seed) and request ids `0..N−1` adds bit-identical noise to identical
 * activations: the mechanism whose privacy this meter reports is
 * bit-for-bit the mechanism that is deployed. `measure_policy`
 * measures any caller-supplied policy directly.
 */
#ifndef SHREDDER_CORE_PRIVACY_METER_H
#define SHREDDER_CORE_PRIVACY_METER_H

#include <cstdint>

#include "src/core/noise_collection.h"
#include "src/core/noise_distribution.h"
#include "src/data/dataset.h"
#include "src/info/dimwise.h"
#include "src/runtime/noise_policy.h"
#include "src/split/split_model.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace core {

/** Knobs for the measurement pass. */
struct MeterConfig
{
    /** Samples used for the accuracy measurement. */
    std::int64_t accuracy_samples = 512;
    /** Samples used for the MI estimate (pairs collected). */
    std::int64_t mi_samples = 384;
    std::int64_t batch_size = 32;
    /** Dimension-wise estimator settings (max_dims caps cost). */
    info::DimwiseConfig mi;
    /** Family fitted by measure_sampling. */
    NoiseFamily family = NoiseFamily::kLaplace;
    /**
     * Root seed of the meter-built policies' id-keyed noise draws
     * (query `q` draws with `Rng(noise_seed(seed, q))`).
     */
    std::uint64_t seed = 2024;
};

/** Result of one measurement pass. */
struct PrivacyReport
{
    double mi_bits = 0.0;       ///< Î(x; transmitted).
    double ex_vivo = 0.0;       ///< 1/MI.
    double accuracy = 0.0;      ///< Top-1 accuracy through the noise.
    double in_vivo = 0.0;       ///< 1/SNR (0 for the clean pass).
    std::int64_t samples = 0;   ///< MI sample pairs used.
};

/** See file comment. */
class PrivacyMeter
{
  public:
    /**
     * @param model     Split view of the frozen network.
     * @param test_set  Borrowed held-out data.
     * @param config    Measurement knobs.
     */
    PrivacyMeter(split::SplitModel& model, const data::Dataset& test_set,
                 const MeterConfig& config = {});

    /** Baseline: no noise — the paper's "original execution". */
    PrivacyReport measure_clean();

    /** One fixed tensor on every query (deterministic transform). */
    PrivacyReport measure_fixed(const Tensor& noise);

    /** Per-query draw of a stored tensor (ablation D3). */
    PrivacyReport measure_replay(const NoiseCollection& collection);

    /** Deployment path: per-query sample from the fitted distribution. */
    PrivacyReport measure_sampling(const NoiseCollection& collection);

    /** As `measure_sampling`, with an already-fitted distribution. */
    PrivacyReport measure_distribution(const NoiseDistribution& dist);

    /**
     * Measure an arbitrary noise mechanism — e.g. the very policy
     * object a `ServingEngine` endpoint executes. Query `q` applies
     * `policy.apply(activation, q)`.
     */
    PrivacyReport measure_policy(const runtime::NoisePolicy& policy);

  private:
    /** One pass: every mode funnels into this policy-driven loop. */
    PrivacyReport measure_impl(const runtime::NoisePolicy& policy);

    split::SplitModel& model_;
    const data::Dataset& test_set_;
    MeterConfig config_;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_PRIVACY_METER_H
