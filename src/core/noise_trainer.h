/**
 * @file
 * The noise-learning loop (paper §2.1–2.4, §3.2).
 *
 * Trains *only* the noise tensor: the pre-trained network weights are
 * frozen, the edge part L runs forward-only, and gradients flow from
 * the cross-entropy loss back through the remote part R to the noise
 * (∂(a+n)/∂n = 1), plus the privacy term's direct contribution. Adam
 * is the optimizer, as in the paper.
 */
#ifndef SHREDDER_CORE_NOISE_TRAINER_H
#define SHREDDER_CORE_NOISE_TRAINER_H

#include <cstdint>
#include <vector>

#include "src/core/lambda_controller.h"
#include "src/core/noise_tensor.h"
#include "src/core/shredder_loss.h"
#include "src/data/dataset.h"
#include "src/split/split_model.h"
#include "src/tensor/rng.h"

namespace shredder {
namespace core {

/** Knobs for one noise-training run. */
struct NoiseTrainConfig
{
    /** Optimization steps (mini-batches). */
    int iterations = 300;
    std::int64_t batch_size = 16;
    float learning_rate = 5e-2f;
    /** Privacy regularizer variant (Eq. 3 by default). */
    PrivacyTerm term = PrivacyTerm::kL1Expansion;
    /** λ schedule, including the in-vivo target that triggers decay. */
    LambdaSchedule lambda;
    /** Laplace(µ, b) initialization of the noise tensor. */
    NoiseInit init;
    /**
     * Interpret init.scale *relative* to the activation RMS at the
     * cut: the effective Laplace scale becomes
     * init.scale · RMS(a) / √2, i.e. the initial noise std is
     * init.scale × RMS(a) and the initial in-vivo privacy is
     * ≈ init.scale². Makes one config transfer across networks whose
     * activation magnitudes differ wildly (e.g. post-LRN AlexNet).
     */
    bool init_scale_relative = false;
    /** Record a trace point every this many iterations. */
    int trace_every = 10;
    std::uint64_t seed = 7777;
    bool verbose = false;
};

/** One point of the training trace (Fig. 4 series). */
struct TracePoint
{
    int iteration = 0;
    double in_vivo_privacy = 0.0;  ///< 1/SNR on the current batch.
    double batch_accuracy = 0.0;
    double cross_entropy = 0.0;
    double lambda = 0.0;
};

/** Outcome of a noise-training run. */
struct NoiseTrainResult
{
    Tensor noise;                  ///< The converged noise tensor.
    std::vector<TracePoint> trace;
    double epochs = 0.0;           ///< Training cost in dataset epochs.
    double final_in_vivo = 0.0;
    double final_batch_accuracy = 0.0;
};

/** See file comment. */
class NoiseTrainer
{
  public:
    /**
     * @param model      Split view of the frozen pre-trained network.
     * @param train_set  Borrowed training data for the noise updates.
     * @param config     Training knobs.
     */
    NoiseTrainer(split::SplitModel& model, const data::Dataset& train_set,
                 const NoiseTrainConfig& config);

    /** Run the loop and return the learned noise plus its trace. */
    NoiseTrainResult train();

  private:
    split::SplitModel& model_;
    const data::Dataset& train_set_;
    NoiseTrainConfig config_;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_NOISE_TRAINER_H
