/**
 * @file
 * λ decay controller (paper §3.2).
 *
 * "When the in vivo notion of privacy reaches a certain desired level,
 * λ is decayed to stabilize privacy and facilitate the learning
 * process." This controller watches the in-vivo privacy (1/SNR)
 * observed each iteration and multiplies λ by `decay` whenever the
 * target is met, down to a floor.
 */
#ifndef SHREDDER_CORE_LAMBDA_CONTROLLER_H
#define SHREDDER_CORE_LAMBDA_CONTROLLER_H

#include <cstdint>

namespace shredder {
namespace core {

/** Schedule parameters for λ. */
struct LambdaSchedule
{
    float initial_lambda = 1e-3f;
    /** In-vivo privacy (1/SNR) at which decay kicks in; 0 disables. */
    double privacy_target = 0.0;
    /** Multiplicative decay applied when the target is met. */
    float decay = 0.1f;
    /** λ never decays below this floor. */
    float min_lambda = 1e-6f;
    /** Consecutive above-target observations required per decay. */
    int patience = 3;
};

/** See file comment. */
class LambdaController
{
  public:
    explicit LambdaController(const LambdaSchedule& schedule);

    /** Current λ. */
    float lambda() const { return lambda_; }

    /** True once at least one decay has fired. */
    bool stabilized() const { return decays_ > 0; }

    /** Number of decays applied so far. */
    int decays() const { return decays_; }

    /**
     * Feed one in-vivo privacy observation; returns the (possibly
     * decayed) λ to use next.
     */
    float observe(double in_vivo_privacy);

  private:
    LambdaSchedule schedule_;
    float lambda_;
    int above_streak_ = 0;
    int decays_ = 0;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_LAMBDA_CONTROLLER_H
