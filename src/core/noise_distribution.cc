/**
 * @file
 * Implementation of the fitted per-element noise distribution (§2.5).
 */
#include "src/core/noise_distribution.h"

#include <cmath>
#include <fstream>

#include "src/runtime/logging.h"
#include "src/tensor/serialize.h"

namespace shredder {
namespace core {

namespace {

constexpr std::uint32_t kDistMagic = 0x54534453;  // 'SDST'

}  // namespace

NoiseDistribution::NoiseDistribution(NoiseFamily family, Tensor location,
                                     Tensor scale)
    : family_(family), location_(std::move(location)),
      scale_(std::move(scale))
{}

NoiseDistribution
NoiseDistribution::fit(const NoiseCollection& collection, NoiseFamily family,
                       float scale_floor)
{
    SHREDDER_REQUIRE(!collection.empty(),
                     "cannot fit a distribution to an empty collection");
    const Shape shape = collection.noise_shape();
    const std::int64_t numel = shape.numel();
    const std::int64_t k = collection.size();

    Tensor location(shape);
    Tensor scale(shape);
    float* ploc = location.data();
    float* pscale = scale.data();

    for (std::int64_t i = 0; i < numel; ++i) {
        double mean = 0.0;
        for (std::int64_t s = 0; s < k; ++s) {
            mean += collection.get(s).noise[i];
        }
        mean /= static_cast<double>(k);
        ploc[i] = static_cast<float>(mean);

        double spread = 0.0;
        for (std::int64_t s = 0; s < k; ++s) {
            const double d = collection.get(s).noise[i] - mean;
            spread += family == NoiseFamily::kLaplace ? std::abs(d) : d * d;
        }
        spread /= static_cast<double>(k);
        pscale[i] = static_cast<float>(
            family == NoiseFamily::kLaplace ? spread : std::sqrt(spread));
    }

    // Scale floor: a fraction of the mean |location| keeps degenerate
    // fits (k == 1, or identical samples) stochastic.
    const double mean_abs_loc = location.abs_sum() /
                                static_cast<double>(std::max<std::int64_t>(
                                    1, numel));
    const float floor =
        static_cast<float>(scale_floor * std::max(1e-3, mean_abs_loc));
    for (std::int64_t i = 0; i < numel; ++i) {
        pscale[i] = std::max(pscale[i], floor);
    }
    return NoiseDistribution(family, std::move(location), std::move(scale));
}

Tensor
NoiseDistribution::sample(Rng& rng) const
{
    Tensor out(location_.shape());
    float* po = out.data();
    const float* ploc = location_.data();
    const float* pscale = scale_.data();
    for (std::int64_t i = 0; i < out.size(); ++i) {
        if (family_ == NoiseFamily::kLaplace) {
            po[i] = rng.laplace(ploc[i], std::max(1e-9f, pscale[i]));
        } else {
            po[i] = rng.normal(ploc[i], pscale[i]);
        }
    }
    return out;
}

double
NoiseDistribution::mean_variance() const
{
    // Mixture over elements: E[var] per family.
    double acc = 0.0;
    const float* pscale = scale_.data();
    for (std::int64_t i = 0; i < scale_.size(); ++i) {
        const double b = pscale[i];
        acc += family_ == NoiseFamily::kLaplace ? 2.0 * b * b : b * b;
    }
    return scale_.size() > 0 ? acc / static_cast<double>(scale_.size())
                             : 0.0;
}

void
NoiseDistribution::save(std::ostream& os) const
{
    wire::write_u32(os, kDistMagic);
    wire::write_u32(os, static_cast<std::uint32_t>(family_));
    write_tensor(os, location_);
    write_tensor(os, scale_);
}

NoiseDistribution
NoiseDistribution::load(std::istream& is)
{
    wire::expect_magic(is, kDistMagic, "noise distribution");
    const std::uint32_t family = wire::read_u32(is);
    if (family > static_cast<std::uint32_t>(NoiseFamily::kGaussian)) {
        throw SerializeError("bad noise family in distribution stream");
    }
    Tensor location = read_tensor_checked(is);
    Tensor scale = read_tensor_checked(is);
    if (!(location.shape() == scale.shape())) {
        throw SerializeError(
            "distribution location/scale shape mismatch (" +
            location.shape().to_string() + " vs " +
            scale.shape().to_string() + ")");
    }
    return NoiseDistribution(static_cast<NoiseFamily>(family),
                             std::move(location), std::move(scale));
}

void
NoiseDistribution::save(const std::string& path) const
{
    std::ofstream os(path, std::ios::binary);
    SHREDDER_REQUIRE(os.good(), "cannot open for write: ", path);
    save(os);
    SHREDDER_REQUIRE(os.good(), "write failed: ", path);
}

NoiseDistribution
NoiseDistribution::load(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    SHREDDER_REQUIRE(is.good(), "cannot open: ", path);
    try {
        return load(static_cast<std::istream&>(is));
    } catch (const SerializeError& e) {
        SHREDDER_FATAL("noise distribution file ", path, ": ", e.what());
    }
}

}  // namespace core
}  // namespace shredder
