/**
 * @file
 * The trainable additive noise tensor — Shredder's only learnable
 * object (paper §2.1, §2.4).
 *
 * The noise has the shape of one activation sample at the cutting
 * point and is initialized from a Laplace(µ, b) distribution. During
 * training it is broadcast-added across the batch; its gradient is the
 * batch-sum of the activation gradients (∂(a+n)/∂n = 1).
 */
#ifndef SHREDDER_CORE_NOISE_TENSOR_H
#define SHREDDER_CORE_NOISE_TENSOR_H

#include <cstdint>

#include "src/nn/parameter.h"
#include "src/tensor/rng.h"
#include "src/tensor/tensor.h"

namespace shredder {
namespace core {

/** Laplace initialization hyper-parameters (paper §2.4). */
struct NoiseInit
{
    float location = 0.0f;  ///< µ.
    float scale = 1.0f;     ///< b (variance is 2b²).
    std::uint64_t seed = 1234;
};

/** See file comment. */
class NoiseTensor
{
  public:
    /**
     * @param sample_shape  Shape of one activation sample (no batch
     *                      dimension).
     * @param init          Laplace initialization parameters.
     */
    NoiseTensor(const Shape& sample_shape, const NoiseInit& init);

    /** Construct from an existing noise value (e.g. a stored sample). */
    explicit NoiseTensor(Tensor value);

    /** The underlying trainable parameter (for the optimizer). */
    nn::Parameter& param() { return param_; }
    const nn::Parameter& param() const { return param_; }

    /** Current noise value. */
    const Tensor& value() const { return param_.value; }

    /** Number of trainable scalars. */
    std::int64_t size() const { return param_.value.size(); }

    /** Shape of one activation sample. */
    const Shape& sample_shape() const { return param_.value.shape(); }

    /**
     * a′ = a + n with n broadcast over the batch (dim 0 of
     * `batch_activation`).
     */
    Tensor apply(const Tensor& batch_activation) const;

    /**
     * Accumulate ∂loss/∂n from the batch gradient at the cut:
     * grad(n) += Σ_batch grad_a′.
     */
    void accumulate_grad(const Tensor& batch_grad);

  private:
    nn::Parameter param_;
};

}  // namespace core
}  // namespace shredder

#endif  // SHREDDER_CORE_NOISE_TENSOR_H
