/**
 * @file
 * Implementation of the noise-learning loop (§2.1–2.4, §3.2).
 */
#include "src/core/noise_trainer.h"

#include <cmath>

#include "src/data/dataloader.h"
#include "src/info/snr.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/runtime/logging.h"

namespace shredder {
namespace core {

NoiseTrainer::NoiseTrainer(split::SplitModel& model,
                           const data::Dataset& train_set,
                           const NoiseTrainConfig& config)
    : model_(model), train_set_(train_set), config_(config)
{
    SHREDDER_REQUIRE(config.iterations > 0, "trainer needs iterations > 0");
    SHREDDER_REQUIRE(config.batch_size > 0, "trainer needs batch size > 0");
}

NoiseTrainResult
NoiseTrainer::train()
{
    // Freeze every network weight: Shredder never retrains the model.
    for (nn::Parameter* p : model_.network().parameters()) {
        p->frozen = true;
    }

    // The run's private execution context: every edge/cloud pass of
    // this loop caches activations here, so concurrent trainers (or a
    // live server) can share the frozen network untouched.
    nn::ExecutionContext ctx(config_.seed * 0x9E3779B97F4A7C15ULL + 1);

    // Noise tensor shaped like one activation sample at the cut.
    Shape act_shape =
        model_.activation_shape(train_set_.image_shape());
    Shape sample_shape;
    switch (act_shape.rank()) {
      case 2: sample_shape = Shape({act_shape[1]}); break;
      case 4:
        sample_shape = Shape({act_shape[1], act_shape[2], act_shape[3]});
        break;
      default:
        SHREDDER_FATAL("unsupported activation rank ", act_shape.rank());
    }
    NoiseInit init = config_.init;
    init.seed = config_.seed * 1315423911ULL + 17;
    if (config_.init_scale_relative) {
        // Calibrate against the activation RMS of a probe batch.
        const std::int64_t probe_count = std::min<std::int64_t>(
            config_.batch_size, train_set_.size());
        const data::Batch probe =
            data::materialize(train_set_, 0, probe_count);
        const Tensor act =
            model_.edge_forward(probe.images, ctx, nn::Mode::kEval);
        const double rms = std::sqrt(act.mean_square());
        init.scale = static_cast<float>(init.scale * rms /
                                        std::sqrt(2.0));
        SHREDDER_REQUIRE(init.scale > 0.0f,
                         "degenerate activation RMS at the cut");
    }
    NoiseTensor noise(sample_shape, init);

    nn::Adam optimizer({&noise.param()}, config_.learning_rate);
    ShredderLoss loss(config_.term, config_.lambda.initial_lambda);
    LambdaController lambda_ctrl(config_.lambda);

    Rng rng(config_.seed);
    data::DataLoader loader(train_set_, config_.batch_size,
                            /*shuffle=*/true, rng);

    NoiseTrainResult result;
    double in_vivo = 0.0;
    double batch_acc = 0.0;
    for (int it = 0; it < config_.iterations; ++it) {
        auto batch = loader.next();
        if (!batch) {
            loader.reset();
            batch = loader.next();
            SHREDDER_CHECK(batch.has_value(), "empty training set");
        }

        // Edge forward (no gradients needed through L).
        const Tensor activation =
            model_.edge_forward(batch->images, ctx, nn::Mode::kEval);
        const Tensor noisy = noise.apply(activation);

        // Cloud forward + loss.
        const Tensor logits =
            model_.cloud_forward(noisy, ctx, nn::Mode::kEval);
        const ShredderLossValue lv =
            loss.compute(logits, batch->labels, noise.value());

        // Backward through R only; then the privacy term.
        optimizer.zero_grad();
        const Tensor grad_at_cut =
            model_.cloud_backward(lv.logits_grad, ctx);
        noise.accumulate_grad(grad_at_cut);
        loss.add_privacy_grad(noise.value(), noise.param().grad);
        optimizer.step();

        // In-vivo privacy on this batch; drive the λ schedule with it.
        in_vivo = info::in_vivo_privacy(activation, noise.value());
        loss.set_lambda(lambda_ctrl.observe(in_vivo));
        batch_acc = nn::accuracy(logits, batch->labels);

        if (config_.trace_every > 0 &&
            (it % config_.trace_every == 0 ||
             it == config_.iterations - 1)) {
            TracePoint tp;
            tp.iteration = it;
            tp.in_vivo_privacy = in_vivo;
            tp.batch_accuracy = batch_acc;
            tp.cross_entropy = lv.cross_entropy;
            tp.lambda = loss.lambda();
            result.trace.push_back(tp);
            if (config_.verbose) {
                inform("noise it ", it, ": 1/SNR=", in_vivo,
                       " acc=", tp.batch_accuracy, " ce=",
                       tp.cross_entropy, " lambda=", tp.lambda);
            }
        }
    }

    result.noise = noise.value();
    result.epochs = static_cast<double>(config_.iterations) *
                    static_cast<double>(config_.batch_size) /
                    static_cast<double>(train_set_.size());
    result.final_in_vivo = in_vivo;
    result.final_batch_accuracy = batch_acc;
    return result;
}

}  // namespace core
}  // namespace shredder
